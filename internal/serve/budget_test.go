package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nfvxai/internal/core"
)

// postBudget posts an explain request with an X-Budget-Ms header.
func postBudget(t *testing.T, srv *httptest.Server, path, headerMs string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if headerMs != "" {
		req.Header.Set("X-Budget-Ms", headerMs)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func testInstance(p *core.Pipeline) []float64 {
	return append([]float64(nil), p.Train.X[0]...)
}

func TestBudgetedExplainReportsAnytime(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/models/default/explain", map[string]any{
		"features":  testInstance(p),
		"method":    "kernelshap",
		"budget_ms": 5000,
	})
	wantStatus(t, resp, http.StatusOK)
	er := decode[ExplainResponse](t, resp)
	if er.Anytime == nil {
		t.Fatal("budgeted request must report an anytime block")
	}
	if er.Anytime.BudgetMs != 5000 {
		t.Fatalf("budget_ms = %d want 5000", er.Anytime.BudgetMs)
	}
	if er.Anytime.Rung == "" {
		t.Fatalf("anytime = %+v; want the ladder rung reported", er.Anytime)
	}
	if len(er.Contributions) == 0 {
		t.Fatal("no contributions")
	}
}

func TestBudgetPrecedenceBodyOverHeaderOverDefault(t *testing.T) {
	p := pipeline(t)
	s := New(p)
	s.DefaultBudgetMs = 9000
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Server default applies when neither body nor header carry one.
	resp := postJSON(t, srv, "/explain", map[string]any{"features": testInstance(p)})
	wantStatus(t, resp, http.StatusOK)
	if er := decode[ExplainResponse](t, resp); er.Anytime == nil || er.Anytime.BudgetMs != 9000 {
		t.Fatalf("anytime = %+v; want server default 9000", er.Anytime)
	}

	// Header beats the server default.
	resp = postBudget(t, srv, "/explain", "7000", map[string]any{"features": testInstance(p)})
	wantStatus(t, resp, http.StatusOK)
	if er := decode[ExplainResponse](t, resp); er.Anytime == nil || er.Anytime.BudgetMs != 7000 {
		t.Fatalf("anytime = %+v; want header 7000", er.Anytime)
	}

	// Body beats both.
	resp = postBudget(t, srv, "/explain", "7000", map[string]any{
		"features": testInstance(p), "budget_ms": 6000,
	})
	wantStatus(t, resp, http.StatusOK)
	if er := decode[ExplainResponse](t, resp); er.Anytime == nil || er.Anytime.BudgetMs != 6000 {
		t.Fatalf("anytime = %+v; want body 6000", er.Anytime)
	}
}

func TestBudgetValidation(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	resp := postJSON(t, srv, "/explain", map[string]any{
		"features": testInstance(p), "budget_ms": -5,
	})
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()

	resp = postJSON(t, srv, "/explain", map[string]any{
		"features": testInstance(p), "budget_ms": MaxBudgetMs + 1,
	})
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()

	resp = postBudget(t, srv, "/explain", "not-a-number", map[string]any{"features": testInstance(p)})
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()
}

func TestTinyBudgetDegradesNeverEmpty200(t *testing.T) {
	// A budget smaller than one sampling block must still produce either
	// a valid degraded explanation (the occlusion floor) or a typed 504 —
	// never an empty 200. PredCostNs is pinned high so the ladder prices
	// kernelshap far over a 1 ms budget deterministically.
	p := pipeline(t)
	old := p.PredCostNs
	p.PredCostNs = 50_000 // 50 µs per prediction: 1 ms fits no kernel block
	defer func() { p.PredCostNs = old }()
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/models/default/explain", map[string]any{
		"features":  testInstance(p),
		"method":    "kernelshap",
		"budget_ms": 1,
	})
	switch resp.StatusCode {
	case http.StatusOK:
		er := decode[ExplainResponse](t, resp)
		if len(er.Contributions) == 0 {
			t.Fatal("200 with zero contributions: empty success is forbidden")
		}
		if er.Anytime == nil || !er.Anytime.Downgraded {
			t.Fatalf("anytime = %+v; a 1 ms kernelshap must be downgraded", er.Anytime)
		}
		if er.Method != "occlusion" {
			t.Fatalf("method = %q; want the occlusion floor rung", er.Method)
		}
	case http.StatusGatewayTimeout:
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
			t.Fatalf("504 must carry a typed error body: %v, %v", body, err)
		}
		resp.Body.Close()
	default:
		t.Fatalf("status %d; want 200 (degraded) or 504 (typed timeout)", resp.StatusCode)
	}
}

func TestBudgetExpiringMidBatch(t *testing.T) {
	// A batch under a budget that cannot cover every instance returns
	// 200 with per-instance errors (partial results), or 504 when nothing
	// finished — never a torn or empty success.
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	instances := make([][]float64, 16)
	for i := range instances {
		instances[i] = testInstance(p)
	}
	resp := postJSON(t, srv, "/v1/models/default/explain", map[string]any{
		"instances": instances,
		"method":    "kernelshap",
		"budget_ms": 30,
	})
	switch resp.StatusCode {
	case http.StatusOK:
		br := decode[BatchExplainResponse](t, resp)
		if br.Count != len(instances) {
			t.Fatalf("count = %d want %d", br.Count, len(instances))
		}
		okN := 0
		for i, er := range br.Explanations {
			if er.Error != "" {
				continue
			}
			if len(er.Contributions) == 0 {
				t.Fatalf("explanation %d: no error and no contributions", i)
			}
			okN++
		}
		if okN == 0 {
			t.Fatal("200 with zero successful explanations; must have been a 504")
		}
		if br.Failed != len(instances)-okN {
			t.Fatalf("failed = %d want %d", br.Failed, len(instances)-okN)
		}
	case http.StatusGatewayTimeout:
		resp.Body.Close()
	default:
		t.Fatalf("status %d; want 200 (partial) or 504", resp.StatusCode)
	}
}

func TestUnbudgetedExplainUnchanged(t *testing.T) {
	// No budget anywhere: the legacy contract — no Anytime block, no
	// deadline, kernelshap at full fidelity.
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	resp := postJSON(t, srv, "/v1/models/default/explain", map[string]any{
		"features": testInstance(p),
	})
	wantStatus(t, resp, http.StatusOK)
	if er := decode[ExplainResponse](t, resp); er.Anytime != nil {
		t.Fatalf("unbudgeted reply has anytime block %+v", er.Anytime)
	}
}

func TestAdmissionShedsWith503RetryAfter(t *testing.T) {
	p := pipeline(t)
	s := New(p)
	s.MaxInflight = 1
	s.AdmitQueue = 1
	s.AdmitWait = 10 * time.Millisecond
	adm := s.ensureAdmit()

	// Saturate the model: one admitted, one queued.
	ctx := context.Background()
	rel1, err := adm.acquire(ctx, "default")
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		rel, err := adm.acquire(ctx, "default")
		if err == nil {
			defer rel()
		}
		queued <- err
	}()
	// Wait until the second caller occupies the queue slot.
	deadline := time.Now().Add(time.Second)
	for {
		if _, waiting, _ := adm.snapshot("default"); waiting >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued caller never showed up in the wait queue")
		}
		time.Sleep(time.Millisecond)
	}

	srv := httptest.NewServer(s)
	defer srv.Close()
	resp := postJSON(t, srv, "/v1/models/default/explain", map[string]any{
		"features": testInstance(p),
	})
	wantStatus(t, resp, http.StatusServiceUnavailable)
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 shed must carry Retry-After")
	}
	resp.Body.Close()
	<-queued

	// With capacity free again the same request succeeds.
	rel1()
	resp = postJSON(t, srv, "/v1/models/default/explain", map[string]any{
		"features": testInstance(p),
	})
	wantStatus(t, resp, http.StatusOK)
	resp.Body.Close()

	// The shed shows up as "shedding" state in /healthz for a few seconds.
	resp = getJSON(t, srv, "/healthz")
	h := decode[HealthResponse](t, resp)
	if h.States["default"] != StateShedding {
		t.Fatalf("states = %v; want default shedding after a recent shed", h.States)
	}
	if h.Status != "degraded" {
		t.Fatalf("status = %q; shedding default must degrade health (still 200)", h.Status)
	}
}

func TestReadyzReportsModels(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	resp := getJSON(t, srv, "/readyz")
	wantStatus(t, resp, http.StatusOK)
	rr := decode[ReadyResponse](t, resp)
	if rr.Status != "ok" || rr.Default != "default" {
		t.Fatalf("readyz = %+v", rr)
	}
	if len(rr.Models) != 1 || rr.Models[0].State != StateReady {
		t.Fatalf("models = %+v; want one ready model", rr.Models)
	}
	if rr.Models[0].LastSwap.IsZero() {
		t.Fatal("last_swap must carry the ready time")
	}
	if rr.Store != nil {
		t.Fatalf("store = %+v; want absent without an instrumented store", rr.Store)
	}
}
