package serve

// The explanation result cache's serving surface: every explain response
// is tagged X-Cache (hit | miss | coalesced | bypass), per-model counters
// ride on /readyz, and GET /v1/cachez exposes the full global +
// per-artifact picture.

import (
	"net/http"

	"nfvxai/internal/core"
	"nfvxai/internal/registry"
	"nfvxai/internal/xai/xcache"
)

// HeaderCache is the response header naming how an explain was served.
const HeaderCache = "X-Cache"

// setCacheHeader tags the response when a result cache is attached; an
// uncached deployment emits no header at all, preserving the pre-cache
// wire surface byte for byte.
func setCacheHeader(w http.ResponseWriter, p *core.Pipeline, outcome string) {
	if p.ResultCache != nil {
		w.Header().Set(HeaderCache, outcome)
	}
}

// batchOutcome collapses a batch's cache tally to one header value: any
// bypassed instance marks the batch bypass, any computed instance marks
// it miss, a batch served entirely without computing is coalesced when
// any instance joined a flight and hit when all came from the cache.
func batchOutcome(st core.BatchCacheStats) string {
	switch {
	case st.Bypassed > 0:
		return xcache.OutcomeBypass.String()
	case st.Misses > 0:
		return xcache.OutcomeMiss.String()
	case st.Coalesced > 0:
		return xcache.OutcomeCoalesced.String()
	default:
		return xcache.OutcomeHit.String()
	}
}

// ModelCacheHealth is one model's slice of the result-cache counters, as
// reported on /readyz and /v1/cachez. Counters are per artifact digest —
// a cache entry is keyed by artifact digest, never by model name — so a
// freshly retrained model starts from zero while its predecessor's
// counters age out with the dropped digest.
type ModelCacheHealth struct {
	Digest    string `json:"digest"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Coalesced int64  `json:"coalesced"`
	Evicted   int64  `json:"evicted"`
	Entries   int64  `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// modelCacheHealth resolves one ready pipeline's counters without
// forcing work: a pipeline that never served a cache-aware explain has
// no digest yet (DigestIfComputed) and reports nothing.
func modelCacheHealth(c *xcache.Cache, p *core.Pipeline) *ModelCacheHealth {
	if c == nil || p == nil {
		return nil
	}
	digest, ok := p.DigestIfComputed()
	if !ok {
		return nil
	}
	ds, ok := c.DigestStatsFor(digest)
	if !ok {
		return &ModelCacheHealth{Digest: digest}
	}
	return &ModelCacheHealth{
		Digest:    ds.Digest,
		Hits:      ds.Hits,
		Misses:    ds.Misses,
		Coalesced: ds.Coalesced,
		Evicted:   ds.Evicted,
		Entries:   ds.Entries,
		Bytes:     ds.Bytes,
	}
}

// CachezModel pairs a model name with its per-digest counters.
type CachezModel struct {
	Name string `json:"name"`
	ModelCacheHealth
}

// CachezResponse is the GET /v1/cachez reply.
type CachezResponse struct {
	// Enabled is false (with everything else zero) when no result cache
	// is attached.
	Enabled bool         `json:"enabled"`
	Global  xcache.Stats `json:"global,omitempty"`
	// Models lists every ready model whose artifact has touched the
	// cache. Digests with no live model (recently swapped out, tier-2
	// only) appear under digests instead.
	Models []CachezModel `json:"models,omitempty"`
	// Digests is the raw per-artifact view, including digests no model
	// currently maps to.
	Digests []xcache.DigestStats `json:"digests,omitempty"`
}

func (s *Server) handleCachez(w http.ResponseWriter, _ *http.Request) {
	c := s.reg.ExplainCache()
	if c == nil {
		writeJSON(w, http.StatusOK, CachezResponse{})
		return
	}
	resp := CachezResponse{Enabled: true, Global: c.Stats(), Digests: c.PerDigest()}
	for _, e := range s.reg.List() {
		if e.Status != registry.StatusReady || e.Pipeline == nil {
			continue
		}
		if mh := modelCacheHealth(c, e.Pipeline); mh != nil {
			resp.Models = append(resp.Models, CachezModel{Name: e.Spec.Name, ModelCacheHealth: *mh})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
