package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/telemetry"
)

var (
	testPipeline     *core.Pipeline
	testPipelineOnce sync.Once
)

func pipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	testPipelineOnce.Do(func() {
		ds, err := core.WebScenario().GenerateDataset(1, 1, telemetry.TargetBottleneckUtil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewPipeline(core.ModelForest, ds, 2)
		if err != nil {
			t.Fatal(err)
		}
		p.ShapSamples = 128
		testPipeline = p
	})
	return testPipeline
}

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHealthAndSchema(t *testing.T) {
	srv := httptest.NewServer(New(pipeline(t)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	health := decode[map[string]string](t, resp)
	if health["status"] != "ok" || health["model"] != "rf" {
		t.Fatalf("health %v", health)
	}

	resp, err = http.Get(srv.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	schema := decode[SchemaResponse](t, resp)
	if len(schema.Features) != pipeline(t).Train.NumFeatures() {
		t.Fatalf("schema features %d", len(schema.Features))
	}
	if schema.Task != "regression" {
		t.Fatalf("task %q", schema.Task)
	}
}

func TestPredictEndpoint(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	x := p.Test.X[0]
	resp := postJSON(t, srv, "/predict", map[string]any{"features": x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decode[PredictResponse](t, resp)
	if want := p.Model.Predict(x); got.Prediction != want {
		t.Fatalf("prediction %v want %v", got.Prediction, want)
	}
}

func TestPredictValidation(t *testing.T) {
	srv := httptest.NewServer(New(pipeline(t)))
	defer srv.Close()

	// Wrong width.
	resp := postJSON(t, srv, "/predict", map[string]any{"features": []float64{1, 2}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d want 400", resp.StatusCode)
	}
	errBody := decode[map[string]string](t, resp)
	if !strings.Contains(errBody["error"], "features") {
		t.Fatalf("error %q", errBody["error"])
	}
	// Malformed JSON.
	resp2, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed status %d", resp2.StatusCode)
	}
	// Wrong method.
	resp3, err := http.Get(srv.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict status %d", resp3.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	x := p.Test.X[1]
	resp := postJSON(t, srv, "/explain", map[string]any{"features": x, "topk": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decode[ExplainResponse](t, resp)
	if got.Method != "treeshap" {
		t.Fatalf("method %q", got.Method)
	}
	if len(got.Contributions) != 3 {
		t.Fatalf("contributions %d", len(got.Contributions))
	}
	if got.Contributions[0].Feature == "" {
		t.Fatal("unnamed contribution")
	}
	if !strings.Contains(got.Report, "prediction") {
		t.Fatalf("report %q", got.Report)
	}
	if diff := got.Prediction - p.Model.Predict(x); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("explained prediction mismatch: %v", diff)
	}
}

func TestWhatIfEndpoint(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	// Find a high-utilization instance to push down.
	var x []float64
	for _, row := range p.Test.X {
		if p.Model.Predict(row) > 0.8 {
			x = row
			break
		}
	}
	if x == nil {
		x = p.Test.X[0]
	}
	resp := postJSON(t, srv, "/whatif", WhatIfRequest{
		Features:  x,
		Op:        "<=",
		Value:     0.4,
		Immutable: []string{"hour_sin", "hour_cos"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decode[WhatIfResponse](t, resp)
	if got.Valid && got.Prediction > 0.4 {
		t.Fatalf("valid counterfactual above target: %+v", got)
	}
	if got.Report == "" {
		t.Fatal("empty report")
	}
	// Bad op rejected.
	bad := postJSON(t, srv, "/whatif", WhatIfRequest{Features: x, Op: "!=", Value: 1})
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op status %d", bad.StatusCode)
	}
	bad.Body.Close()
	// Wrong width rejected.
	short := postJSON(t, srv, "/whatif", WhatIfRequest{Features: []float64{1}, Op: "<=", Value: 1})
	if short.StatusCode != http.StatusBadRequest {
		t.Fatalf("short features status %d", short.StatusCode)
	}
	short.Body.Close()
}

func TestImportanceEndpoint(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/importance")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decode[ImportanceResponse](t, resp)
	d := p.Train.NumFeatures()
	if len(got.Shap) != d || len(got.Perm) != d || len(got.Features) != d {
		t.Fatalf("importance widths %d/%d/%d want %d", len(got.Shap), len(got.Perm), len(got.Features), d)
	}
	var total float64
	for _, v := range got.Shap {
		if v < 0 {
			t.Fatal("negative |SHAP| importance")
		}
		total += v
	}
	if total == 0 {
		t.Fatal("all-zero importance")
	}
}
