package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/registry"
)

var (
	testPipeline     *core.Pipeline
	testPipelineOnce sync.Once
)

// pipeline trains one small web/rf/util pipeline shared by the tests.
func pipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	testPipelineOnce.Do(func() {
		ds, err := core.WebScenario().GenerateDataset(1, 1, telemetry.TargetBottleneckUtil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewPipeline(core.ModelForest, ds, 2)
		if err != nil {
			t.Fatal(err)
		}
		p.ShapSamples = 128
		testPipeline = p
	})
	return testPipeline
}

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getJSON(t *testing.T, srv *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func wantStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	if resp.StatusCode != want {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d want %d (body %s)", resp.StatusCode, want, body)
	}
}

// ─── v1 model-scoped serving ────────────────────────────────────────────

func TestHealthAndSchema(t *testing.T) {
	srv := httptest.NewServer(New(pipeline(t)))
	defer srv.Close()

	resp := getJSON(t, srv, "/healthz")
	wantStatus(t, resp, http.StatusOK)
	health := decode[HealthResponse](t, resp)
	if health.Status != "ok" || health.Model != "rf" || health.Models != 1 || health.Ready != 1 {
		t.Fatalf("health %+v", health)
	}
	if health.Default != "default" {
		t.Fatalf("default %q", health.Default)
	}

	for _, path := range []string{"/schema", "/v1/models/default/schema"} {
		resp = getJSON(t, srv, path)
		wantStatus(t, resp, http.StatusOK)
		schema := decode[SchemaResponse](t, resp)
		if len(schema.Features) != pipeline(t).Train.NumFeatures() {
			t.Fatalf("%s features %d", path, len(schema.Features))
		}
		if schema.Task != "regression" {
			t.Fatalf("%s task %q", path, schema.Task)
		}
	}
}

func TestModelInfoAndList(t *testing.T) {
	srv := httptest.NewServer(New(pipeline(t)))
	defer srv.Close()

	resp := getJSON(t, srv, "/v1/models")
	wantStatus(t, resp, http.StatusOK)
	list := decode[ModelListResponse](t, resp)
	if list.Default != "default" || len(list.Models) != 1 {
		t.Fatalf("list %+v", list)
	}
	if list.Models[0].Status != "ready" || list.Models[0].Kind != "rf" {
		t.Fatalf("entry %+v", list.Models[0])
	}

	resp = getJSON(t, srv, "/v1/models/default")
	wantStatus(t, resp, http.StatusOK)
	info := decode[ModelInfo](t, resp)
	if info.Name != "default" || info.Status != "ready" || len(info.Features) == 0 {
		t.Fatalf("info %+v", info)
	}

	resp = getJSON(t, srv, "/v1/models/nope")
	wantStatus(t, resp, http.StatusNotFound)
	resp.Body.Close()
}

func TestPredictEndpoint(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	x := p.Test.X[0]
	want := p.Model.Predict(x)
	for _, path := range []string{"/predict", "/v1/models/default/predict"} {
		resp := postJSON(t, srv, path, map[string]any{"features": x})
		wantStatus(t, resp, http.StatusOK)
		got := decode[PredictResponse](t, resp)
		if got.Prediction != want {
			t.Fatalf("%s prediction %v want %v", path, got.Prediction, want)
		}
	}
}

func TestPredictValidation(t *testing.T) {
	srv := httptest.NewServer(New(pipeline(t)))
	defer srv.Close()

	// Wrong width.
	resp := postJSON(t, srv, "/v1/models/default/predict", map[string]any{"features": []float64{1, 2}})
	wantStatus(t, resp, http.StatusBadRequest)
	errBody := decode[map[string]string](t, resp)
	if !strings.Contains(errBody["error"], "features") {
		t.Fatalf("error %q", errBody["error"])
	}
	// Malformed JSON.
	resp2, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed status %d", resp2.StatusCode)
	}
	// Wrong method.
	resp3 := getJSON(t, srv, "/predict")
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict status %d", resp3.StatusCode)
	}
	// Unknown model.
	resp4 := postJSON(t, srv, "/v1/models/nope/predict", map[string]any{"features": []float64{1}})
	wantStatus(t, resp4, http.StatusNotFound)
	resp4.Body.Close()
	// Batch body on predict scores every instance through the batch path
	// and must agree with the single-instance endpoint.
	p := pipeline(t)
	resp5 := postJSON(t, srv, "/v1/models/default/predict",
		map[string]any{"instances": [][]float64{p.Test.X[0], p.Test.X[1]}})
	wantStatus(t, resp5, http.StatusOK)
	batch := decode[BatchPredictResponse](t, resp5)
	if batch.Count != 2 || len(batch.Predictions) != 2 {
		t.Fatalf("batch predict count %d predictions %d", batch.Count, len(batch.Predictions))
	}
	for i, want := range []float64{p.Model.Predict(p.Test.X[0]), p.Model.Predict(p.Test.X[1])} {
		if batch.Predictions[i] != want {
			t.Fatalf("batch prediction %d = %v want %v", i, batch.Predictions[i], want)
		}
	}
	// Unknown action.
	resp6 := postJSON(t, srv, "/v1/models/default/transmogrify", map[string]any{})
	wantStatus(t, resp6, http.StatusNotFound)
	resp6.Body.Close()
}

func TestExplainEndpoint(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	x := p.Test.X[1]
	resp := postJSON(t, srv, "/v1/models/default/explain", map[string]any{"features": x, "topk": 3})
	wantStatus(t, resp, http.StatusOK)
	got := decode[ExplainResponse](t, resp)
	if got.Method != "treeshap" {
		t.Fatalf("method %q", got.Method)
	}
	if len(got.Contributions) != 3 {
		t.Fatalf("contributions %d", len(got.Contributions))
	}
	if got.Contributions[0].Feature == "" {
		t.Fatal("unnamed contribution")
	}
	if !strings.Contains(got.Report, "prediction") {
		t.Fatalf("report %q", got.Report)
	}
	if diff := got.Prediction - p.Model.Predict(x); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("explained prediction mismatch: %v", diff)
	}
}

func TestExplainBatch(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	instances := p.Test.X[:8]
	resp := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"instances": instances, "topk": 4})
	wantStatus(t, resp, http.StatusOK)
	got := decode[BatchExplainResponse](t, resp)
	if got.Method != "treeshap" || got.Count != len(instances) || len(got.Explanations) != len(instances) {
		t.Fatalf("batch shape: method %q count %d len %d", got.Method, got.Count, len(got.Explanations))
	}
	for i, e := range got.Explanations {
		if diff := e.Prediction - p.Model.Predict(instances[i]); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("instance %d prediction mismatch %v", i, diff)
		}
		if len(e.Contributions) != 4 {
			t.Fatalf("instance %d contributions %d", i, len(e.Contributions))
		}
	}

	// Batch validation: both bodies, empty batch, ragged instance, oversize.
	for name, body := range map[string]map[string]any{
		"both":     {"features": instances[0], "instances": instances},
		"empty":    {"instances": [][]float64{}},
		"ragged":   {"instances": [][]float64{instances[0], {1, 2}}},
		"oversize": {"instances": make([][]float64, MaxBatch+1)},
	} {
		if body["instances"] != nil {
			if raw, ok := body["instances"].([][]float64); ok && len(raw) == MaxBatch+1 {
				for i := range raw {
					raw[i] = instances[0]
				}
			}
		}
		resp := postJSON(t, srv, "/v1/models/default/explain", body)
		wantStatus(t, resp, http.StatusBadRequest)
		resp.Body.Close()
		_ = name
	}
}

// ─── method selection ───────────────────────────────────────────────────

func TestExplainersEndpoint(t *testing.T) {
	srv := httptest.NewServer(New(pipeline(t)))
	defer srv.Close()

	resp := getJSON(t, srv, "/v1/models/default/explainers")
	wantStatus(t, resp, http.StatusOK)
	got := decode[ExplainerListResponse](t, resp)
	if got.DefaultMethod != "treeshap" {
		t.Fatalf("default method %q", got.DefaultMethod)
	}
	byName := map[string]ExplainerInfo{}
	for _, e := range got.Explainers {
		byName[e.Name] = e
	}
	// The forest supports the tree and model-agnostic local methods plus
	// the global ones; intgrad (gradient-only) must NOT be listed.
	for _, want := range []string{"treeshap", "kernelshap", "lime", "anchors", "counterfactual", "pdp", "perm", "surrogate"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("method %q missing from %v", want, got.Explainers)
		}
	}
	if _, ok := byName["intgrad"]; ok {
		t.Fatal("intgrad listed for a non-differentiable forest")
	}
	if !byName["treeshap"].Default || byName["lime"].Default {
		t.Fatal("default flag misplaced")
	}
	if byName["pdp"].Kind != "global" || byName["lime"].Kind != "local" {
		t.Fatalf("kinds: pdp %q lime %q", byName["pdp"].Kind, byName["lime"].Kind)
	}
	if !byName["kernelshap"].Capabilities.NeedsBackground {
		t.Fatal("kernelshap capabilities lost")
	}
	// Advertised defaults reflect what an option-less request actually
	// runs: the pipeline's ShapSamples, not the registry's 2048.
	if got, want := byName["kernelshap"].DefaultParams.Samples, pipeline(t).ShapSamples; got != want {
		t.Fatalf("kernelshap advertised samples %d want %d", got, want)
	}
	// Unknown model → 404.
	nf := getJSON(t, srv, "/v1/models/nope/explainers")
	wantStatus(t, nf, http.StatusNotFound)
	nf.Body.Close()
}

func TestExplainMethodSelection(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	x := p.Test.X[2]
	// Explicit default-equivalent method.
	resp := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"features": x, "method": "treeshap"})
	wantStatus(t, resp, http.StatusOK)
	if got := decode[ExplainResponse](t, resp); got.Method != "treeshap" {
		t.Fatalf("method %q", got.Method)
	}
	// Alternative methods succeed on the forest and label themselves.
	for _, method := range []string{"kernelshap", "lime", "anchors", "counterfactual"} {
		resp := postJSON(t, srv, "/v1/models/default/explain",
			map[string]any{"features": x, "method": method, "params": map[string]any{"samples": 64}})
		wantStatus(t, resp, http.StatusOK)
		if got := decode[ExplainResponse](t, resp); got.Method != method {
			t.Fatalf("method %q want %q", got.Method, method)
		}
	}
	// Method + params also applies to batch bodies.
	respB := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"instances": p.Test.X[:3], "method": "lime", "params": map[string]any{"samples": 100, "seed": 9}})
	wantStatus(t, respB, http.StatusOK)
	if got := decode[BatchExplainResponse](t, respB); got.Method != "lime" || got.Count != 3 {
		t.Fatalf("batch method selection: %+v", got)
	}
}

func TestExplainMethodErrors(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()
	x := p.Test.X[0]

	// Unknown method → 400 listing the registry.
	resp := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"features": x, "method": "deeplift"})
	wantStatus(t, resp, http.StatusBadRequest)
	if errBody := decode[map[string]string](t, resp); !strings.Contains(errBody["error"], "treeshap") {
		t.Fatalf("error %q does not list methods", errBody["error"])
	}
	// Capability mismatch: intgrad on the (non-differentiable) forest → 409.
	resp2 := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"features": x, "method": "intgrad"})
	wantStatus(t, resp2, http.StatusConflict)
	resp2.Body.Close()
	// Global method on the explain path → 409 pointing at the jobs API.
	resp3 := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"features": x, "method": "pdp"})
	wantStatus(t, resp3, http.StatusConflict)
	if errBody := decode[map[string]string](t, resp3); !strings.Contains(errBody["error"], "job") {
		t.Fatalf("global-method error %q", errBody["error"])
	}
	// Unknown param key → 400, not silently ignored.
	resp4 := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"features": x, "method": "lime", "params": map[string]any{"samplez": 10}})
	wantStatus(t, resp4, http.StatusBadRequest)
	resp4.Body.Close()
	// Invalid param *value* (bad counterfactual op) is a 400, not a 500.
	resp5 := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"features": x, "method": "counterfactual", "params": map[string]any{"target_op": "=="}})
	wantStatus(t, resp5, http.StatusBadRequest)
	resp5.Body.Close()
}

// TestExplainParamsTopK: params.topk shapes the ranked output like the
// top-level field (which wins when both are present).
func TestExplainParamsTopK(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	x := p.Test.X[0]
	resp := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"features": x, "params": map[string]any{"topk": 2}})
	wantStatus(t, resp, http.StatusOK)
	if got := decode[ExplainResponse](t, resp); len(got.Contributions) != 2 {
		t.Fatalf("params.topk: %d contributions", len(got.Contributions))
	}
	resp2 := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"features": x, "topk": 4, "params": map[string]any{"topk": 2}})
	wantStatus(t, resp2, http.StatusOK)
	if got := decode[ExplainResponse](t, resp2); len(got.Contributions) != 4 {
		t.Fatalf("top-level topk should win: %d contributions", len(got.Contributions))
	}
}

// TestExplainTreeshapOnMLPConflicts pins the acceptance criterion's 409:
// treeshap requested against a model with no tree decomposition.
func TestExplainTreeshapOnMLPConflicts(t *testing.T) {
	ds, err := core.WebScenario().GenerateDataset(3, 1, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := core.NewPipeline(core.ModelMLP, ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	mp.ShapSamples = 64
	srv := httptest.NewServer(New(mp))
	defer srv.Close()

	x := mp.Test.X[0]
	resp := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"features": x, "method": "treeshap"})
	wantStatus(t, resp, http.StatusConflict)
	resp.Body.Close()
	// And intgrad works there (the MLP is differentiable through the
	// scaling wrapper).
	resp2 := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"features": x, "method": "intgrad"})
	wantStatus(t, resp2, http.StatusOK)
	if got := decode[ExplainResponse](t, resp2); got.Method != "intgrad" {
		t.Fatalf("method %q", got.Method)
	}
}

func TestExplainEvaluateAttachesMetrics(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	x := p.Test.X[1]
	resp := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"features": x, "evaluate": true})
	wantStatus(t, resp, http.StatusOK)
	got := decode[ExplainResponse](t, resp)
	if got.Evaluation == nil {
		t.Fatal("evaluate: true returned no evaluation")
	}
	// TreeSHAP satisfies local accuracy: additivity error ~ 0.
	if got.Evaluation.AdditivityError == nil {
		t.Fatal("additive method missing additivity_error")
	}
	if *got.Evaluation.AdditivityError > 1e-6 {
		t.Fatalf("treeshap additivity error %v", *got.Evaluation.AdditivityError)
	}
	if got.Evaluation.DeletionAUC == nil || *got.Evaluation.DeletionAUC <= 0 {
		t.Fatalf("deletion AUC %v", got.Evaluation.DeletionAUC)
	}
	// Non-additive encodings (anchors rules) omit additivity_error but
	// still report the ranking-based deletion AUC.
	respA := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"features": x, "method": "anchors", "evaluate": true})
	wantStatus(t, respA, http.StatusOK)
	gotA := decode[ExplainResponse](t, respA)
	if gotA.Evaluation == nil || gotA.Evaluation.AdditivityError != nil {
		t.Fatalf("anchors evaluation %+v; additivity_error must be omitted", gotA.Evaluation)
	}
	if gotA.Evaluation.DeletionAUC == nil {
		t.Fatal("anchors evaluation missing deletion AUC")
	}
	// Without the flag the field is absent.
	resp2 := postJSON(t, srv, "/v1/models/default/explain", map[string]any{"features": x})
	wantStatus(t, resp2, http.StatusOK)
	if got2 := decode[ExplainResponse](t, resp2); got2.Evaluation != nil {
		t.Fatal("evaluation attached without evaluate: true")
	}
	// Batch bodies evaluate per instance.
	resp3 := postJSON(t, srv, "/v1/models/default/explain",
		map[string]any{"instances": p.Test.X[:2], "evaluate": true})
	wantStatus(t, resp3, http.StatusOK)
	got3 := decode[BatchExplainResponse](t, resp3)
	for i, e := range got3.Explanations {
		if e.Evaluation == nil {
			t.Fatalf("batch instance %d missing evaluation", i)
		}
	}
}

func TestWhatIfEndpoint(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	// Find a high-utilization instance to push down.
	var x []float64
	for _, row := range p.Test.X {
		if p.Model.Predict(row) > 0.8 {
			x = row
			break
		}
	}
	if x == nil {
		x = p.Test.X[0]
	}
	resp := postJSON(t, srv, "/v1/models/default/whatif", WhatIfRequest{
		Features:  x,
		Op:        "<=",
		Value:     0.4,
		Immutable: []string{"hour_sin", "hour_cos"},
	})
	wantStatus(t, resp, http.StatusOK)
	got := decode[WhatIfResponse](t, resp)
	if got.Valid && got.Prediction > 0.4 {
		t.Fatalf("valid counterfactual above target: %+v", got)
	}
	if got.Report == "" {
		t.Fatal("empty report")
	}
	// Bad op rejected.
	bad := postJSON(t, srv, "/whatif", WhatIfRequest{Features: x, Op: "!=", Value: 1})
	wantStatus(t, bad, http.StatusBadRequest)
	bad.Body.Close()
	// Wrong width rejected.
	short := postJSON(t, srv, "/whatif", WhatIfRequest{Features: []float64{1}, Op: "<=", Value: 1})
	wantStatus(t, short, http.StatusBadRequest)
	short.Body.Close()
	// Unknown immutable feature is a client error, not silently dropped.
	unk := postJSON(t, srv, "/v1/models/default/whatif", WhatIfRequest{
		Features: x, Op: "<=", Value: 0.4, Immutable: []string{"no_such_feature"},
	})
	wantStatus(t, unk, http.StatusBadRequest)
	unkBody := decode[map[string]string](t, unk)
	if !strings.Contains(unkBody["error"], "no_such_feature") {
		t.Fatalf("error %q does not name the unknown feature", unkBody["error"])
	}
}

func TestImportanceEndpoint(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	resp := getJSON(t, srv, "/v1/models/default/importance")
	wantStatus(t, resp, http.StatusOK)
	got := decode[ImportanceResponse](t, resp)
	d := p.Train.NumFeatures()
	if len(got.Shap) != d || len(got.Perm) != d || len(got.Features) != d {
		t.Fatalf("importance widths %d/%d/%d want %d", len(got.Shap), len(got.Perm), len(got.Features), d)
	}
	var total float64
	for _, v := range got.Shap {
		if v < 0 {
			t.Fatal("negative |SHAP| importance")
		}
		total += v
	}
	if total == 0 {
		t.Fatal("all-zero importance")
	}
	// The result is cached per pipeline: a second request must return the
	// identical vector (and, being cached, return fast).
	resp2 := getJSON(t, srv, "/importance")
	wantStatus(t, resp2, http.StatusOK)
	got2 := decode[ImportanceResponse](t, resp2)
	for j := range got.Shap {
		if got.Shap[j] != got2.Shap[j] {
			t.Fatalf("cached importance differs at %d", j)
		}
	}
}

// ─── registry lifecycle over the API ────────────────────────────────────

// gatedBuilder blocks builds until released so tests observe "training".
type gatedBuilder struct {
	mu      sync.Mutex
	release chan struct{}
	result  *core.Pipeline
	err     error
}

func (g *gatedBuilder) build(registry.Spec) (*core.Pipeline, error) {
	<-g.release
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.result, g.err
}

// newGatedServer returns a server whose default model is ready and whose
// registry trains via the gated builder.
func newGatedServer(t *testing.T, g *gatedBuilder) (*httptest.Server, chan string) {
	t.Helper()
	s := New(pipeline(t))
	s.Registry().Builder = g.build
	done := make(chan string, 4)
	s.Registry().NotifyBuilds(done)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv, done
}

func waitBuild(t *testing.T, done chan string, want string) {
	t.Helper()
	select {
	case name := <-done:
		if name != want {
			t.Fatalf("build done for %q want %q", name, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %q", want)
	}
}

func TestCreateModelLifecycle(t *testing.T) {
	g := &gatedBuilder{release: make(chan struct{}), result: pipeline(t)}
	srv, done := newGatedServer(t, g)

	// POST /v1/models → 202 with the entry in training.
	resp := postJSON(t, srv, "/v1/models", registry.Spec{Scenario: "nat", Model: "gbt", Target: "violation"})
	wantStatus(t, resp, http.StatusAccepted)
	info := decode[ModelInfo](t, resp)
	if info.Name != "nat/gbt/violation" || info.Status != "training" {
		t.Fatalf("created %+v", info)
	}

	// Serving it while training → 409; GET shows training.
	busy := postJSON(t, srv, "/v1/models/nat/gbt/violation/predict", map[string]any{"features": []float64{1}})
	wantStatus(t, busy, http.StatusConflict)
	busy.Body.Close()
	st := getJSON(t, srv, "/v1/models/nat/gbt/violation")
	wantStatus(t, st, http.StatusOK)
	if got := decode[ModelInfo](t, st); got.Status != "training" {
		t.Fatalf("mid-train status %q", got.Status)
	}

	// Duplicate create while training → 409.
	dup := postJSON(t, srv, "/v1/models", registry.Spec{Scenario: "nat", Model: "gbt", Target: "violation"})
	wantStatus(t, dup, http.StatusConflict)
	dup.Body.Close()

	// Release the build; the model flips to ready and serves.
	close(g.release)
	waitBuild(t, done, "nat/gbt/violation")
	st2 := getJSON(t, srv, "/v1/models/nat/gbt/violation")
	got := decode[ModelInfo](t, st2)
	if got.Status != "ready" || got.ReadyAt.IsZero() {
		t.Fatalf("post-train %+v", got)
	}
	x := pipeline(t).Test.X[0]
	ok := postJSON(t, srv, "/v1/models/nat/gbt/violation/predict", map[string]any{"features": x})
	wantStatus(t, ok, http.StatusOK)
	ok.Body.Close()
}

func TestCreateModelValidation(t *testing.T) {
	srv := httptest.NewServer(New(pipeline(t)))
	defer srv.Close()

	// Unknown scenario/model/target → 400.
	for _, sp := range []registry.Spec{
		{Scenario: "moon", Model: "rf", Target: "util"},
		{Scenario: "web", Model: "svm", Target: "util"},
		{Scenario: "web", Model: "rf", Target: "loss"},
		{Name: "sneaky/predict", Scenario: "web", Model: "rf", Target: "util"},
		{Name: "un?addressable", Scenario: "web", Model: "rf", Target: "util"},
		{Name: "/lead", Scenario: "web", Model: "rf", Target: "util"},
		{Scenario: "web", Model: "rf", Target: "util", Hours: 1e9},
		{Scenario: "web", Model: "rf", Target: "util", Hours: -3},
	} {
		resp := postJSON(t, srv, "/v1/models", sp)
		wantStatus(t, resp, http.StatusBadRequest)
		resp.Body.Close()
	}
	// Malformed JSON → 400.
	resp, err := http.Post(srv.URL+"/v1/models", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusBadRequest)
	resp.Body.Close()
	// Duplicate of the ready default → 409.
	dup := postJSON(t, srv, "/v1/models", registry.Spec{Name: "default", Scenario: "web", Model: "rf", Target: "util"})
	wantStatus(t, dup, http.StatusConflict)
	dup.Body.Close()
}

func TestFailedBuildReported(t *testing.T) {
	g := &gatedBuilder{release: make(chan struct{}), err: fmt.Errorf("sim exploded")}
	srv, done := newGatedServer(t, g)

	resp := postJSON(t, srv, "/v1/models", registry.Spec{Scenario: "web", Model: "gbt", Target: "latency"})
	wantStatus(t, resp, http.StatusAccepted)
	resp.Body.Close()
	close(g.release)
	waitBuild(t, done, "web/gbt/latency")

	st := getJSON(t, srv, "/v1/models/web/gbt/latency")
	got := decode[ModelInfo](t, st)
	if got.Status != "failed" || !strings.Contains(got.Error, "sim exploded") {
		t.Fatalf("failed entry %+v", got)
	}
	// A failed model is registered but unservable → 409.
	busy := postJSON(t, srv, "/v1/models/web/gbt/latency/predict", map[string]any{"features": []float64{1}})
	wantStatus(t, busy, http.StatusConflict)
	busy.Body.Close()

	// A failed name is reclaimable: re-POSTing retrains (202), it is not
	// squatted forever by the dead build.
	g.mu.Lock()
	g.err, g.result = nil, pipeline(t)
	g.mu.Unlock()
	retry := postJSON(t, srv, "/v1/models", registry.Spec{Scenario: "web", Model: "gbt", Target: "latency"})
	wantStatus(t, retry, http.StatusAccepted)
	retry.Body.Close()
	waitBuild(t, done, "web/gbt/latency")
	st2 := getJSON(t, srv, "/v1/models/web/gbt/latency")
	if got := decode[ModelInfo](t, st2); got.Status != "ready" {
		t.Fatalf("after retry: %+v", got)
	}
}

// TestHealthDegraded checks that /healthz holds traffic (503) while the
// default model is unservable and recovers once it trains.
func TestHealthDegraded(t *testing.T) {
	g := &gatedBuilder{release: make(chan struct{}), result: pipeline(t)}
	reg := registry.New()
	reg.Builder = g.build
	done := make(chan string, 1)
	reg.NotifyBuilds(done)
	if _, err := reg.Create(registry.Spec{Scenario: "web", Model: "rf", Target: "util"}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	resp := getJSON(t, srv, "/healthz")
	wantStatus(t, resp, http.StatusServiceUnavailable)
	h := decode[HealthResponse](t, resp)
	if h.Status != "degraded" || h.Ready != 0 || h.Models != 1 {
		t.Fatalf("degraded health %+v", h)
	}

	close(g.release)
	waitBuild(t, done, "web/rf/util")
	resp2 := getJSON(t, srv, "/healthz")
	wantStatus(t, resp2, http.StatusOK)
	if h2 := decode[HealthResponse](t, resp2); h2.Status != "ok" || h2.Ready != 1 {
		t.Fatalf("recovered health %+v", h2)
	}
}

// TestConcurrentServingDuringTraining checks the hot-swap: the ready
// default keeps serving while another model trains and swaps in.
func TestConcurrentServingDuringTraining(t *testing.T) {
	g := &gatedBuilder{release: make(chan struct{}), result: pipeline(t)}
	srv, done := newGatedServer(t, g)

	resp := postJSON(t, srv, "/v1/models", registry.Spec{Scenario: "web", Model: "cart", Target: "util"})
	wantStatus(t, resp, http.StatusAccepted)
	resp.Body.Close()

	x := pipeline(t).Test.X[0]
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := postJSON(t, srv, "/predict", map[string]any{"features": x})
				if r.StatusCode != http.StatusOK {
					t.Errorf("default predict during training: %d", r.StatusCode)
					r.Body.Close()
					return
				}
				r.Body.Close()
			}
		}()
	}
	close(g.release)
	waitBuild(t, done, "web/cart/util")
	close(stop)
	wg.Wait()

	// Both models now serve from one process.
	for _, name := range []string{"default", "web/cart/util"} {
		r := postJSON(t, srv, "/v1/models/"+name+"/predict", map[string]any{"features": x})
		wantStatus(t, r, http.StatusOK)
		r.Body.Close()
	}
}

// ─── legacy-alias parity ────────────────────────────────────────────────

func TestLegacyAliasParity(t *testing.T) {
	p := pipeline(t)
	srv := httptest.NewServer(New(p))
	defer srv.Close()

	x := p.Test.X[2]
	pairs := []struct {
		legacy, v1 string
		body       any
	}{
		{"/schema", "/v1/models/default/schema", nil},
		{"/importance", "/v1/models/default/importance", nil},
		{"/predict", "/v1/models/default/predict", map[string]any{"features": x}},
		{"/explain", "/v1/models/default/explain", map[string]any{"features": x, "topk": 3}},
		{"/whatif", "/v1/models/default/whatif", WhatIfRequest{Features: x, Op: "<=", Value: 0.4}},
	}
	for _, pr := range pairs {
		read := func(path string) string {
			var resp *http.Response
			if pr.body == nil {
				resp = getJSON(t, srv, path)
			} else {
				resp = postJSON(t, srv, path, pr.body)
			}
			wantStatus(t, resp, http.StatusOK)
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return string(b)
		}
		legacy, v1 := read(pr.legacy), read(pr.v1)
		if legacy != v1 {
			t.Fatalf("%s and %s disagree:\n%s\nvs\n%s", pr.legacy, pr.v1, legacy, v1)
		}
	}
}
