// The live explanation stream: GET /v1/models/{name}/stream?feed={feed}
// serves Server-Sent Events pairing every telemetry record on a feed with
// the model's prediction and its top-k attribution. Records are
// micro-batched — whatever has queued while the previous batch was being
// explained is explained together through the batch fast path — so the
// stream's explanation throughput scales with the batch evaluator instead
// of per-record explainer latency.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/xai"
)

// maxStreamBatch caps the SSE micro-batch (and so the per-flush latency).
const maxStreamBatch = 64

// StreamHello is the first SSE event ("hello") on a stream.
type StreamHello struct {
	Model  string `json:"model"`
	Feed   string `json:"feed"`
	Method string `json:"method"`
	// Batch is the negotiated micro-batch cap.
	Batch int `json:"batch"`
}

// StreamEvent is one "record" SSE event: a telemetry record scored and
// explained.
type StreamEvent struct {
	// Seq numbers events per stream from 1.
	Seq       uint64  `json:"seq"`
	TimeSec   float64 `json:"time_sec"`
	HourOfDay float64 `json:"hour_of_day"`
	// Prediction / Base / Contributions mirror the explain endpoint.
	Prediction    float64        `json:"prediction"`
	Base          float64        `json:"base"`
	Contributions []Contribution `json:"contributions"`
}

// sseEvent writes one SSE frame.
func sseEvent(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, key string, def int) (int, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, s)
	}
	return v, nil
}

// handleModelStream streams per-record predictions and attributions for
// every record on the named feed. Query parameters: feed (required),
// method (default: the model's default explainer), topk (default 5),
// batch (micro-batch cap, default 16), limit (end the stream after N
// events; 0 streams until the client disconnects or the feed closes).
func (s *Server) handleModelStream(w http.ResponseWriter, r *http.Request, name string) {
	p, ok := s.lookup(w, name)
	if !ok {
		return
	}
	feedName := r.URL.Query().Get("feed")
	if feedName == "" {
		writeError(w, http.StatusBadRequest, "feed query parameter required")
		return
	}
	f, err := s.hub.Get(feedName)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if err := schemaMatches(p.Train.Names, f.Spec()); err != nil {
		writeError(w, http.StatusConflict, "model %q cannot consume feed %q: %v", name, feedName, err)
		return
	}
	topK, err := queryInt(r, "topk", 5)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if topK <= 0 {
		topK = 5
	}
	batch, err := queryInt(r, "batch", 16)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if batch < 1 {
		batch = 1
	}
	if batch > maxStreamBatch {
		batch = maxStreamBatch
	}
	limit, err := queryInt(r, "limit", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, method, err := p.ExplainerFor(r.URL.Query().Get("method"), xai.Options{})
	if err != nil {
		writeExplainerError(w, err)
		return
	}
	// Methods without the batch capability share one explainer instance
	// only sequentially; clamp their micro-batch to 1.
	if m, ok := xai.LookupMethod(method); ok && !m.Caps.SupportsBatch {
		batch = 1
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by transport")
		return
	}
	sub, cancelSub, err := f.Subscribe()
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	defer cancelSub()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	if err := sseEvent(w, "hello", StreamHello{Model: name, Feed: feedName, Method: method, Batch: batch}); err != nil {
		return
	}
	flusher.Flush()

	ctx := r.Context()
	win := telemetry.NewWindow(8)
	var seq uint64
	recs := make([]telemetry.Record, 0, batch)
	xs := make([][]float64, 0, batch)
	feedClosed := false
	for !feedClosed {
		recs, xs = recs[:0], xs[:0]
		select {
		case <-ctx.Done():
			return
		case rec, ok := <-sub:
			if !ok {
				feedClosed = true
				break
			}
			win.Push(rec)
			recs = append(recs, rec)
			xs = append(xs, telemetry.Features(win))
		}
		// Micro-batch: drain whatever queued while we were waiting, up to
		// the cap; the batch then rides the matrix fast path together.
	drain:
		for len(recs) > 0 && len(recs) < batch {
			select {
			case rec, ok := <-sub:
				if !ok {
					feedClosed = true
					break drain
				}
				win.Push(rec)
				recs = append(recs, rec)
				xs = append(xs, telemetry.Features(win))
			default:
				break drain
			}
		}
		if len(recs) == 0 {
			continue
		}
		attrs, err := xai.ExplainBatchGated(ctx, e, xs, s.ensureGate())
		if err != nil {
			_ = sseEvent(w, "error", map[string]string{"error": err.Error()})
			flusher.Flush()
			return
		}
		for i, attr := range attrs {
			seq++
			ev := StreamEvent{
				Seq:        seq,
				TimeSec:    recs[i].TimeSec,
				HourOfDay:  recs[i].HourOfDay,
				Prediction: attr.Value,
				Base:       attr.Base,
			}
			for _, j := range attr.TopK(topK) {
				ev.Contributions = append(ev.Contributions, Contribution{
					Feature: featureName(p.Train.Names, j),
					Phi:     attr.Phi[j],
				})
			}
			if err := sseEvent(w, "record", ev); err != nil {
				return
			}
			if limit > 0 && seq >= uint64(limit) {
				flusher.Flush()
				return
			}
		}
		flusher.Flush()
	}
}
