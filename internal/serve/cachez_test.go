package serve

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/registry"
	"nfvxai/internal/xai/xcache"
)

// cachedServer builds a server over a fresh pipeline (NOT the shared
// test fixture — these tests mutate cache state) with an explanation
// result cache attached to its registry.
func cachedServer(t *testing.T, cfg xcache.Config) (*httptest.Server, *core.Pipeline, *xcache.Cache) {
	t.Helper()
	ds, err := core.WebScenario().GenerateDataset(1, 1, telemetry.TargetBottleneckUtil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPipeline(core.ModelForest, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.ShapSamples = 128
	reg := registry.New()
	if _, err := reg.AddReady(registry.Spec{Name: "default"}, p, time.Now()); err != nil {
		t.Fatal(err)
	}
	c := xcache.New(cfg)
	reg.UseExplainCache(c)
	s := NewServer(reg)
	// The coalescing test fires 64 identical requests at once; admission
	// must admit them all so the cache — not the shed path — absorbs the
	// stampede.
	s.MaxInflight = 64
	t.Cleanup(func() { s.Close() })
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv, p, c
}

// TestExplainCacheHeaderLifecycle: miss → hit → bypass on the X-Cache
// header, with /v1/cachez and /readyz counters tracking each step.
func TestExplainCacheHeaderLifecycle(t *testing.T) {
	srv, p, c := cachedServer(t, xcache.Config{})
	x := p.Test.X[0]

	resp := postJSON(t, srv, "/v1/models/default/explain", map[string]any{"features": x})
	wantStatus(t, resp, 200)
	if got := resp.Header.Get(HeaderCache); got != "miss" {
		t.Fatalf("first explain X-Cache = %q, want miss", got)
	}
	first := decode[ExplainResponse](t, resp)

	resp = postJSON(t, srv, "/v1/models/default/explain", map[string]any{"features": x})
	wantStatus(t, resp, 200)
	if got := resp.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("second explain X-Cache = %q, want hit", got)
	}
	second := decode[ExplainResponse](t, resp)
	if len(first.Contributions) == 0 || len(first.Contributions) != len(second.Contributions) {
		t.Fatalf("contribution counts %d vs %d", len(first.Contributions), len(second.Contributions))
	}
	for j, fc := range first.Contributions {
		if sc := second.Contributions[j]; sc.Feature != fc.Feature || sc.Phi != fc.Phi {
			t.Fatalf("cached contribution[%d] = %+v, fresh %+v (not bit-identical)", j, sc, fc)
		}
	}
	if second.Prediction != first.Prediction || second.Base != first.Base {
		t.Fatal("cached prediction/base drift")
	}

	resp = postJSON(t, srv, "/v1/models/default/explain", map[string]any{"features": x, "no_cache": true})
	wantStatus(t, resp, 200)
	if got := resp.Header.Get(HeaderCache); got != "bypass" {
		t.Fatalf("no_cache explain X-Cache = %q, want bypass", got)
	}
	resp.Body.Close()

	// /v1/cachez: one compute, one hit, entries > 0, model mapped.
	cz := decode[CachezResponse](t, getJSON(t, srv, "/v1/cachez"))
	if !cz.Enabled {
		t.Fatal("cachez must report enabled")
	}
	if cz.Global.Misses != 1 || cz.Global.Hits != 1 || cz.Global.Entries != 1 {
		t.Fatalf("cachez global: %+v", cz.Global)
	}
	if len(cz.Models) != 1 || cz.Models[0].Name != "default" {
		t.Fatalf("cachez models: %+v", cz.Models)
	}
	digest, ok := p.DigestIfComputed()
	if !ok || cz.Models[0].Digest != digest {
		t.Fatalf("cachez digest %q, pipeline %q (%v)", cz.Models[0].Digest, digest, ok)
	}

	// /readyz: the same counters ride on the model's health entry.
	rz := decode[ReadyResponse](t, getJSON(t, srv, "/readyz"))
	if len(rz.Models) != 1 || rz.Models[0].Cache == nil {
		t.Fatalf("readyz cache block missing: %+v", rz.Models)
	}
	mc := rz.Models[0].Cache
	if mc.Digest != digest || mc.Hits != 1 || mc.Misses != 1 {
		t.Fatalf("readyz cache: %+v", mc)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("stats misses = %d (bypass must not compute through the cache)", st.Misses)
	}
}

// TestUncachedServerKeepsWireSurface: without a cache there is no
// X-Cache header, /v1/cachez reports disabled, and /readyz has no cache
// block — the pre-cache wire surface byte for byte.
func TestUncachedServerKeepsWireSurface(t *testing.T) {
	srv := httptest.NewServer(New(pipeline(t)))
	defer srv.Close()
	resp := postJSON(t, srv, "/v1/models/default/explain", map[string]any{"features": pipeline(t).Test.X[0]})
	wantStatus(t, resp, 200)
	if _, ok := resp.Header[HeaderCache]; ok {
		t.Fatalf("uncached deployment must emit no X-Cache header, got %q", resp.Header.Get(HeaderCache))
	}
	resp.Body.Close()
	cz := decode[CachezResponse](t, getJSON(t, srv, "/v1/cachez"))
	if cz.Enabled {
		t.Fatal("cachez must report disabled")
	}
	rz := decode[ReadyResponse](t, getJSON(t, srv, "/readyz"))
	if rz.Models[0].Cache != nil {
		t.Fatal("readyz must carry no cache block")
	}
}

// TestBatchExplainCacheSplit: a batch mixing cached, duplicate and new
// instances reports the split and tags the response with the collapsed
// outcome.
func TestBatchExplainCacheSplit(t *testing.T) {
	srv, p, _ := cachedServer(t, xcache.Config{})
	x0, x1 := p.Test.X[0], p.Test.X[1]

	resp := postJSON(t, srv, "/v1/models/default/explain", map[string]any{"features": x0})
	wantStatus(t, resp, 200)
	resp.Body.Close()

	resp = postJSON(t, srv, "/v1/models/default/explain", map[string]any{"instances": [][]float64{x0, x1, x1}})
	wantStatus(t, resp, 200)
	if got := resp.Header.Get(HeaderCache); got != "miss" {
		t.Fatalf("batch with fresh instances X-Cache = %q, want miss", got)
	}
	br := decode[BatchExplainResponse](t, resp)
	if br.Cache == nil {
		t.Fatal("batch response must carry cache stats when a cache is attached")
	}
	if br.Cache.Hits != 1 || br.Cache.Misses+br.Cache.Coalesced != 2 {
		t.Fatalf("batch cache split: %+v", br.Cache)
	}
	if br.Failed != 0 || len(br.Explanations) != 3 {
		t.Fatalf("batch: failed %d, %d explanations", br.Failed, len(br.Explanations))
	}

	// Re-sending the same batch is served entirely from cache.
	resp = postJSON(t, srv, "/v1/models/default/explain", map[string]any{"instances": [][]float64{x0, x1, x1}})
	wantStatus(t, resp, 200)
	if got := resp.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("all-cached batch X-Cache = %q, want hit", got)
	}
	br = decode[BatchExplainResponse](t, resp)
	if br.Cache == nil || br.Cache.Hits != 3 {
		t.Fatalf("all-cached batch stats: %+v", br.Cache)
	}

	// no_cache on a batch bypasses wholesale.
	resp = postJSON(t, srv, "/v1/models/default/explain", map[string]any{"instances": [][]float64{x0}, "no_cache": true})
	wantStatus(t, resp, 200)
	if got := resp.Header.Get(HeaderCache); got != "bypass" {
		t.Fatalf("no_cache batch X-Cache = %q, want bypass", got)
	}
	resp.Body.Close()
}

// TestConcurrentIdenticalHTTPRequests pins the acceptance criterion at
// the HTTP layer: 64 concurrent identical explain requests run exactly
// one computation — one miss, 63 served as hits or coalesced joins.
func TestConcurrentIdenticalHTTPRequests(t *testing.T) {
	srv, p, c := cachedServer(t, xcache.Config{})
	x := p.Test.X[3]
	var wg sync.WaitGroup
	outcomes := make([]string, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, srv, "/v1/models/default/explain", map[string]any{"features": x})
			outcomes[i] = resp.Header.Get(HeaderCache)
			if resp.StatusCode != 200 {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("computations = %d, want exactly 1 (64 identical requests must coalesce)", st.Misses)
	}
	if st.Hits+st.Coalesced != 63 {
		t.Fatalf("hits %d + coalesced %d != 63", st.Hits, st.Coalesced)
	}
	var misses int
	for _, o := range outcomes {
		if o == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("miss-tagged responses = %d, want 1", misses)
	}
}

// TestTier2ServesAcrossNodes: two nodes sharing one blob bucket — node B
// imports the same artifact and serves node A's computed explanation as
// a hit without computing.
func TestTier2ServesAcrossNodes(t *testing.T) {
	blob := registry.NewMemBlob()
	srvA, p, cA := cachedServer(t, xcache.Config{Tier2: blob})
	x := p.Test.X[4]

	resp := postJSON(t, srvA, "/v1/models/default/explain", map[string]any{"features": x})
	wantStatus(t, resp, 200)
	if got := resp.Header.Get(HeaderCache); got != "miss" {
		t.Fatalf("node A X-Cache = %q", got)
	}
	want := decode[ExplainResponse](t, resp)
	if st := cA.Stats(); st.Tier2Puts != 1 {
		t.Fatalf("node A tier-2 puts = %d", st.Tier2Puts)
	}

	// Node B: same artifact bytes (save/load round trip preserves the
	// content digest), fresh in-process cache, same bucket.
	data, err := p.Save()
	if err != nil {
		t.Fatal(err)
	}
	pB, err := core.LoadPipeline(data)
	if err != nil {
		t.Fatal(err)
	}
	regB := registry.New()
	if _, err := regB.AddReady(registry.Spec{Name: "default"}, pB, time.Now()); err != nil {
		t.Fatal(err)
	}
	cB := xcache.New(xcache.Config{Tier2: blob})
	regB.UseExplainCache(cB)
	sB := NewServer(regB)
	t.Cleanup(func() { sB.Close() })
	srvB := httptest.NewServer(sB)
	defer srvB.Close()

	resp = postJSON(t, srvB, "/v1/models/default/explain", map[string]any{"features": x})
	wantStatus(t, resp, 200)
	if got := resp.Header.Get(HeaderCache); got != "hit" {
		t.Fatalf("node B first request X-Cache = %q, want hit (tier-2)", got)
	}
	got := decode[ExplainResponse](t, resp)
	if len(got.Contributions) != len(want.Contributions) {
		t.Fatalf("cross-node contribution counts %d vs %d", len(got.Contributions), len(want.Contributions))
	}
	for j, wc := range want.Contributions {
		if gc := got.Contributions[j]; gc.Phi != wc.Phi || gc.Feature != wc.Feature {
			t.Fatalf("cross-node contribution[%d] = %+v want %+v", j, gc, wc)
		}
	}
	st := cB.Stats()
	if st.Tier2Hits != 1 || st.Misses != 0 {
		t.Fatalf("node B must serve from tier 2 without computing: %+v", st)
	}
}
