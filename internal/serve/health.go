// The health pair: GET /healthz is the cheap liveness + traffic-gate
// summary (unchanged contract: 503 exactly when the default model is not
// servable), and GET /readyz is the operator's detail view — per-model
// state including degradation while a drift-triggered retrain is in
// flight, admission pressure, retrain counts and last hot-swap times, and
// the artifact store's fault-tolerance state (retry/breaker health when
// the store is wrapped in a registry.RetryStore).
package serve

import (
	"net/http"
	"time"

	"nfvxai/internal/cluster"
	"nfvxai/internal/mat"
	"nfvxai/internal/registry"
)

// Model health states, coarsest first. "ready" means serving normally;
// "degraded" means serving but impaired (a retrain is replacing the
// pipeline, or the model was restored without its training split);
// "shedding" means admission control rejected load within the last few
// seconds; "training"/"failed" mirror the registry lifecycle.
const (
	StateReady    = "ready"
	StateDegraded = "degraded"
	StateShedding = "shedding"
	StateTraining = "training"
	StateFailed   = "failed"
)

// ModelHealth is one model's entry in the /readyz reply.
type ModelHealth struct {
	Name  string `json:"name"`
	State string `json:"state"`
	// Retrains and LastSwap track drift-triggered hot-swaps: LastSwap is
	// the latest time a (re)trained pipeline went live.
	Retrains int       `json:"retrains,omitempty"`
	LastSwap time.Time `json:"last_swap"`
	// Retraining is true while a drift-triggered retrain is in flight.
	Retraining bool `json:"retraining,omitempty"`
	// Admission pressure: current in-flight work, queued waiters, and
	// total requests shed since start.
	Inflight int    `json:"inflight,omitempty"`
	Waiting  int    `json:"waiting,omitempty"`
	Shed     uint64 `json:"shed,omitempty"`
	// Cache is this model's slice of the explanation result cache —
	// hit/miss/coalesced/evicted counters keyed by its artifact digest
	// (cachez.go); absent until the artifact first touches the cache.
	Cache *ModelCacheHealth `json:"cache,omitempty"`
}

// ReadyResponse is the GET /readyz reply.
type ReadyResponse struct {
	// Status is "ok" when the default model is servable and the store (if
	// any) is not tripped open; else "degraded". The HTTP status is 503
	// only when the default model cannot serve — store trouble degrades
	// the report but never gates traffic, because serving does not need
	// the store.
	Status  string        `json:"status"`
	Default string        `json:"default,omitempty"`
	Models  []ModelHealth `json:"models"`
	// Store is the artifact store's fault-tolerance state when the
	// registry's store is instrumented (registry.RetryStore); absent for
	// bare or missing stores.
	Store *registry.StoreHealth `json:"store,omitempty"`
	// NodeID and Version identify the node and build behind a load
	// balancer; Cluster is the fleet view when this node is clustered.
	NodeID  string         `json:"node_id,omitempty"`
	Version string         `json:"version,omitempty"`
	Cluster *ClusterHealth `json:"cluster,omitempty"`
	// MatBackend names the active dense-kernel backend ("go" or
	// "blocked"; mat.Active) — the build-tag default unless overridden by
	// explaind -matbackend. Surfaced so an operator comparing latency
	// across nodes can see which kernel plane each one runs.
	MatBackend string `json:"mat_backend"`
}

// ClusterHealth is the fleet view a clustered node reports on /healthz
// and /readyz: this node's ring role, every peer's liveness, who owns
// which model, and how far the sync loop lags the shared store.
type ClusterHealth struct {
	NodeID      string `json:"node_id"`
	Replication int    `json:"replication"`
	// Peers is the liveness view of every member (self included).
	Peers []cluster.PeerStatus `json:"peers"`
	// Owns lists the locally registered models this node is a ring owner
	// of; Owners maps every local model to its owner node ids, primary
	// first.
	Owns   []string            `json:"owns,omitempty"`
	Owners map[string][]string `json:"owners,omitempty"`
	// MembersFileError surfaces a failing members-file reload.
	MembersFileError string `json:"members_file_error,omitempty"`
	// Sync is the manifest sync loop's lag and counters, when running.
	Sync *cluster.SyncStatus `json:"sync,omitempty"`
}

// clusterHealth assembles the ClusterHealth block (nil when the server
// is not clustered).
func (s *Server) clusterHealth() *ClusterHealth {
	c := s.Cluster
	if c == nil {
		return nil
	}
	self := c.Self()
	ch := &ClusterHealth{
		NodeID:           self.ID,
		Replication:      c.Replication(),
		Peers:            c.Peers(),
		MembersFileError: c.FileError(),
	}
	names := make([]string, 0, s.reg.Len())
	for _, e := range s.reg.List() {
		names = append(names, e.Spec.Name)
	}
	ch.Owners = c.OwnersFor(names)
	for _, name := range names {
		for _, id := range ch.Owners[name] {
			if id == self.ID {
				ch.Owns = append(ch.Owns, name)
				break
			}
		}
	}
	if s.Syncer != nil {
		st := s.Syncer.Status()
		ch.Sync = &st
	}
	return ch
}

// retrainingModel reports whether any attached feed is retraining name.
func (s *Server) retrainingModel(name string) bool {
	s.attachMu.Lock()
	defer s.attachMu.Unlock()
	for _, atts := range s.attachments {
		for _, att := range atts {
			if att.model == name && att.retraining.Load() {
				return true
			}
		}
	}
	return false
}

// modelState derives one model's health state from the registry
// lifecycle, the retrain-in-flight flag, and recent admission shedding.
func (s *Server) modelState(e registry.Entry) string {
	switch e.Status {
	case registry.StatusTraining:
		return StateTraining
	case registry.StatusFailed:
		return StateFailed
	}
	if s.retrainingModel(e.Spec.Name) {
		return StateDegraded
	}
	if s.ensureAdmit().shedding(e.Spec.Name) {
		return StateShedding
	}
	return StateReady
}

// storeHealth returns the store's health snapshot when instrumented.
func (s *Server) storeHealth() *registry.StoreHealth {
	if sh, ok := s.reg.StoreHealth(); ok {
		return &sh
	}
	return nil
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	resp := ReadyResponse{
		Status: "ok", Default: s.reg.DefaultName(),
		NodeID: s.NodeID, Version: Version, Cluster: s.clusterHealth(),
		MatBackend: mat.Active().Name(),
	}
	adm := s.ensureAdmit()
	defaultServable := false
	for _, e := range s.reg.List() {
		mh := ModelHealth{
			Name:       e.Spec.Name,
			State:      s.modelState(e),
			Retrains:   e.Retrains,
			LastSwap:   e.ReadyAt,
			Retraining: s.retrainingModel(e.Spec.Name),
		}
		mh.Inflight, mh.Waiting, mh.Shed = adm.snapshot(e.Spec.Name)
		mh.Cache = modelCacheHealth(s.reg.ExplainCache(), e.Pipeline)
		resp.Models = append(resp.Models, mh)
		if e.Spec.Name == resp.Default && e.Status == registry.StatusReady {
			defaultServable = true
			if mh.State != StateReady {
				resp.Status = "degraded"
			}
		}
	}
	resp.Store = s.storeHealth()
	if resp.Store != nil && resp.Store.State == registry.StoreStateOpen {
		resp.Status = "degraded"
	}
	status := http.StatusOK
	if !defaultServable {
		resp.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
