// The streaming plane of the serving API: a scenario catalog
// (GET/POST /v1/scenarios) over the registry's scenario registry, live
// telemetry feeds (POST /v1/feeds) driven by the simulator or external
// ingest (POST /v1/feeds/{name}/records), and model attachments
// (POST /v1/feeds/{name}/attach) that score the stream online, detect
// drift and retrain through the jobs subsystem, hot-swapping the model
// via the registry lifecycle.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/feed"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/registry"
)

// ─── scenario catalog ───────────────────────────────────────────────────

// ScenarioInfo is one registered scenario as served by the API.
type ScenarioInfo struct {
	core.ScenarioSpec
	// Aliases are alternate lookup names ("web" for "web-sfc").
	Aliases []string `json:"aliases,omitempty"`
	// Features is the telemetry feature schema models trained on this
	// scenario consume — derived, but operators need it to shape ingest.
	Features []string `json:"features,omitempty"`
}

// ScenarioListResponse is the GET /v1/scenarios reply.
type ScenarioListResponse struct {
	Scenarios []ScenarioInfo `json:"scenarios"`
}

func (s *Server) scenarioInfo(sp core.ScenarioSpec) ScenarioInfo {
	return ScenarioInfo{
		ScenarioSpec: sp,
		Aliases:      s.reg.Scenarios.AliasesOf(sp.Name),
		Features:     telemetry.FeatureNames(sp.GroupNames()),
	}
}

func (s *Server) handleListScenarios(w http.ResponseWriter, _ *http.Request) {
	specs := s.reg.Scenarios.List()
	resp := ScenarioListResponse{Scenarios: make([]ScenarioInfo, 0, len(specs))}
	for _, sp := range specs {
		resp.Scenarios = append(resp.Scenarios, s.scenarioInfo(sp))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreateScenario(w http.ResponseWriter, r *http.Request) {
	var sp core.ScenarioSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields() // a misspelled spec field is a client error
	if err := dec.Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	norm, err := s.reg.Scenarios.Register(sp)
	if err != nil {
		if errors.Is(err, core.ErrScenarioExists) {
			writeError(w, http.StatusConflict, "%v", err)
		} else {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	// Registered scenarios must survive restart: rewrite the manifest now
	// rather than waiting for the next model persist to happen by luck.
	// The in-memory registration already succeeded, so a store failure is
	// reported through the registry's observer, not as a request error.
	if err := s.reg.PersistManifest(); err != nil && s.reg.OnStoreError != nil {
		s.reg.OnStoreError(err)
	}
	writeJSON(w, http.StatusCreated, s.scenarioInfo(norm))
}

func (s *Server) handleGetScenario(w http.ResponseWriter, r *http.Request) {
	sp, err := s.reg.Scenarios.Lookup(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.scenarioInfo(sp))
}

// ─── feeds ──────────────────────────────────────────────────────────────

// FeedRequest is the POST /v1/feeds body.
type FeedRequest struct {
	// Name is the feed's registry key (one URL path segment).
	Name string `json:"name"`
	// Scenario names the registered scenario providing the telemetry
	// schema (and, for simulated feeds, the world to run).
	Scenario string `json:"scenario"`
	// Simulate drives the feed from the simulator (default true); false
	// makes it ingest-only.
	Simulate *bool `json:"simulate,omitempty"`
	// Seed / Rate / Buffer are feed.Options fields.
	Seed   int64   `json:"seed,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
	Buffer int     `json:"buffer,omitempty"`
	// Fault injects stalls/bursts on a simulated feed (chaos testing).
	Fault *feed.Fault `json:"fault,omitempty"`
}

// FeedInfo is one feed as served by the API.
type FeedInfo struct {
	Name     string `json:"name"`
	Scenario string `json:"scenario"`
	feed.Options
	Stats       feed.Stats       `json:"stats"`
	Attachments []AttachmentInfo `json:"attachments,omitempty"`
}

// FeedListResponse is the GET /v1/feeds reply.
type FeedListResponse struct {
	Feeds []FeedInfo `json:"feeds"`
}

// MaxFeeds bounds how many live feeds one process runs; each simulated
// feed owns a background goroutine. Enforced atomically by the hub.
const MaxFeeds = 64

func (s *Server) feedInfo(f *feed.Feed) FeedInfo {
	info := FeedInfo{
		Name:     f.Name(),
		Scenario: f.Spec().Name,
		Options:  f.Options(),
		Stats:    f.Stats(),
	}
	s.attachMu.Lock()
	for _, att := range s.attachments[f.Name()] {
		info.Attachments = append(info.Attachments, att.info())
	}
	s.attachMu.Unlock()
	return info
}

func (s *Server) handleListFeeds(w http.ResponseWriter, _ *http.Request) {
	feeds := s.hub.List()
	resp := FeedListResponse{Feeds: make([]FeedInfo, 0, len(feeds))}
	for _, f := range feeds {
		resp.Feeds = append(resp.Feeds, s.feedInfo(f))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreateFeed(w http.ResponseWriter, r *http.Request) {
	var req FeedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	sp, err := s.reg.Scenarios.Lookup(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := feed.Options{Simulate: true, Seed: req.Seed, Rate: req.Rate, Buffer: req.Buffer, Fault: req.Fault}
	if req.Simulate != nil {
		opts.Simulate = *req.Simulate
	}
	f, err := s.hub.Open(req.Name, sp, opts)
	if err != nil {
		switch {
		case errors.Is(err, feed.ErrFeedExists):
			writeError(w, http.StatusConflict, "%v", err)
		case errors.Is(err, feed.ErrTooManyFeeds):
			writeError(w, http.StatusTooManyRequests, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, s.feedInfo(f))
}

func (s *Server) handleGetFeed(w http.ResponseWriter, r *http.Request) {
	f, err := s.hub.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.feedInfo(f))
}

func (s *Server) handleDeleteFeed(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.hub.Close(name); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	// Closing the feed closed the monitors' subscriptions; Stop just
	// drains their goroutines before the attachments are forgotten.
	s.attachMu.Lock()
	atts := s.attachments[name]
	delete(s.attachments, name)
	s.attachMu.Unlock()
	for _, att := range atts {
		att.mon.Stop()
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// ─── ingest ─────────────────────────────────────────────────────────────

// MaxIngestBatch bounds how many records one ingest request may carry.
const MaxIngestBatch = 512

// IngestRequest is the POST /v1/feeds/{name}/records body.
type IngestRequest struct {
	Records []telemetry.Record `json:"records"`
}

// IngestResponse reports how many records were accepted. Records before
// a rejected one are already published (accepted counts them), so the
// client retries from the reported offset, not from the start.
type IngestResponse struct {
	Accepted int `json:"accepted"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	f, err := s.hub.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Records) == 0 {
		writeError(w, http.StatusBadRequest, "records must not be empty")
		return
	}
	if len(req.Records) > MaxIngestBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Records), MaxIngestBatch)
		return
	}
	for i, rec := range req.Records {
		if err := f.Ingest(rec); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error":    fmt.Sprintf("record %d: %v", i, err),
				"accepted": i,
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, IngestResponse{Accepted: len(req.Records)})
}

// ─── attachments: online scoring, drift, retrain ────────────────────────

// AttachRequest is the POST /v1/feeds/{name}/attach body.
type AttachRequest struct {
	// Model names the ready registry model to monitor.
	Model string `json:"model"`
	// MaxRows bounds the streaming training window (default 4096).
	MaxRows int `json:"max_rows,omitempty"`
	// Drift configures the detector; zero values select defaults.
	Drift feed.DriftConfig `json:"drift,omitempty"`
	// AutoRetrain submits a retrain job on every drift trigger (default
	// true). False leaves drift observable via GET /v1/feeds/{name} and
	// retraining to manual jobs.
	AutoRetrain *bool `json:"auto_retrain,omitempty"`
	// MinRetrainRows is the smallest streamed dataset a retrain will
	// train from (default 64); a drift trigger before that fails the job
	// rather than hot-swapping a model trained on a sliver.
	MinRetrainRows int `json:"min_retrain_rows,omitempty"`
	// MinRetrainIntervalSec rate-limits drift-triggered retrains in wall
	// time (default 30 s). High-rate simulated feeds sweep whole diurnal
	// cycles per wall second, so a frozen feature baseline can re-flag
	// drift the moment it rebuilds; without this floor every flag becomes
	// a training run. Manual retrain jobs bypass the limit — the
	// operator asked. Drift triggers remain counted either way.
	MinRetrainIntervalSec float64 `json:"min_retrain_interval_sec,omitempty"`
}

// attachment binds one model to one feed.
type attachment struct {
	feedName    string
	model       string
	mon         *feed.Monitor
	autoRetrain bool
	minRows     int
	minInterval time.Duration
	// retraining serializes retrain jobs per attachment: a drift storm
	// submits one job, not one per trigger. lastRetrain (unix nanos)
	// backs the wall-clock rate limit on automatic submissions.
	retraining  atomic.Bool
	lastRetrain atomic.Int64
	retrainJobs atomic.Uint64
}

// AttachmentInfo is one attachment as served by the API.
type AttachmentInfo struct {
	Feed string `json:"feed"`
	feed.MonitorStats
	AutoRetrain           bool    `json:"auto_retrain"`
	MinRetrainRows        int     `json:"min_retrain_rows"`
	MinRetrainIntervalSec float64 `json:"min_retrain_interval_sec"`
	RetrainJobs           uint64  `json:"retrain_jobs"`
	Retraining            bool    `json:"retraining"`
}

func (att *attachment) info() AttachmentInfo {
	return AttachmentInfo{
		Feed:                  att.feedName,
		MonitorStats:          att.mon.Stats(),
		AutoRetrain:           att.autoRetrain,
		MinRetrainRows:        att.minRows,
		MinRetrainIntervalSec: att.minInterval.Seconds(),
		RetrainJobs:           att.retrainJobs.Load(),
		Retraining:            att.retraining.Load(),
	}
}

// findAttachment resolves (model, feed) to an attachment; an empty feed
// name matches a model attached to exactly one feed.
func (s *Server) findAttachment(model, feedName string) (*attachment, error) {
	s.attachMu.Lock()
	defer s.attachMu.Unlock()
	var found []*attachment
	for _, atts := range s.attachments {
		for _, att := range atts {
			if att.model != model {
				continue
			}
			if feedName == "" || att.feedName == feedName {
				found = append(found, att)
			}
		}
	}
	switch len(found) {
	case 0:
		if feedName != "" {
			return nil, fmt.Errorf("model %q is not attached to feed %q", model, feedName)
		}
		return nil, fmt.Errorf("model %q is not attached to any feed", model)
	case 1:
		return found[0], nil
	default:
		return nil, fmt.Errorf("model %q is attached to %d feeds; name one in params.feed", model, len(found))
	}
}

func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	feedName := r.PathValue("name")
	f, err := s.hub.Get(feedName)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	var req AttachRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	p, ok := s.lookup(w, req.Model)
	if !ok {
		return
	}
	entry, err := s.reg.Get(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if entry.Spec.Target == "" {
		writeError(w, http.StatusBadRequest, "model %q has no target spec; only registry-trained models can be attached", req.Model)
		return
	}
	target, err := registry.TargetFor(entry.Spec.Target)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec := f.Spec()
	if err := schemaMatches(p.Train.Names, spec); err != nil {
		writeError(w, http.StatusConflict, "model %q cannot consume feed %q: %v", req.Model, feedName, err)
		return
	}
	maxRows := req.MaxRows
	if maxRows <= 0 {
		maxRows = 4096
	}
	minRows := req.MinRetrainRows
	if minRows <= 0 {
		minRows = 64
	}
	minInterval := time.Duration(req.MinRetrainIntervalSec * float64(time.Second))
	if minInterval <= 0 {
		minInterval = 30 * time.Second
	}
	att := &attachment{
		feedName:    feedName,
		model:       req.Model,
		autoRetrain: req.AutoRetrain == nil || *req.AutoRetrain,
		minRows:     minRows,
		minInterval: minInterval,
	}
	ext := telemetry.NewExtractor(target, spec.SLO.MaxLatencyMs, spec.GroupNames())
	ext.MaxRows = maxRows

	s.attachMu.Lock()
	for _, other := range s.attachments[feedName] {
		if other.model == req.Model {
			s.attachMu.Unlock()
			writeError(w, http.StatusConflict, "model %q is already attached to feed %q", req.Model, feedName)
			return
		}
	}
	mon, err := feed.Attach(f, feed.MonitorConfig{
		Model:     req.Model,
		Extractor: ext,
		// Resolving through the registry on every prediction means a
		// hot-swapped (retrained) pipeline takes over mid-stream.
		Predict: func(x []float64) float64 {
			p, err := s.reg.Lookup(req.Model)
			if err != nil {
				return 0
			}
			return p.Model.Predict(x)
		},
		Drift:   req.Drift,
		OnDrift: func(rep feed.DriftReport) { s.onDrift(att, rep) },
	})
	if err != nil {
		s.attachMu.Unlock()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	att.mon = mon
	s.attachments[feedName] = append(s.attachments[feedName], att)
	s.attachMu.Unlock()
	writeJSON(w, http.StatusCreated, att.info())
}

// schemaMatches checks that the feed's telemetry feature schema is
// exactly the model's training schema.
func schemaMatches(modelNames []string, spec core.ScenarioSpec) error {
	names := telemetry.FeatureNames(spec.GroupNames())
	if len(names) != len(modelNames) {
		return fmt.Errorf("feed schema has %d features, model expects %d", len(names), len(modelNames))
	}
	for i, n := range names {
		if modelNames[i] != n {
			return fmt.Errorf("feature %d is %q, model expects %q", i, n, modelNames[i])
		}
	}
	return nil
}

// onDrift runs on the monitor goroutine for every drift trigger: it
// submits one retrain job unless one is already in flight.
func (s *Server) onDrift(att *attachment, _ feed.DriftReport) {
	if !att.autoRetrain {
		return
	}
	if time.Since(time.Unix(0, att.lastRetrain.Load())) < att.minInterval {
		return
	}
	if !att.retraining.CompareAndSwap(false, true) {
		return
	}
	p, err := s.reg.Lookup(att.model)
	if err != nil {
		att.retraining.Store(false)
		return
	}
	if _, err := s.jobs.submit(att.model, JobRetrain, JobParams{Feed: att.feedName}, p, s.retrainRunner(att)); err != nil {
		att.retraining.Store(false)
		return
	}
	// Stamp the rate limit only on a successful submission: a failed one
	// must not consume the adaptation window.
	att.lastRetrain.Store(time.Now().UnixNano())
}

// RetrainResult is the retrain job result.
type RetrainResult struct {
	Model string `json:"model"`
	Feed  string `json:"feed"`
	// Rows is how many streamed examples the new pipeline trained on.
	Rows int `json:"rows"`
	// Retrains is the model's total successful hot-swap count after this
	// one.
	Retrains int `json:"retrains"`
}

// retrainRunner builds the job runner for one attachment: snapshot the
// streamed dataset, train a fresh pipeline of the model's kind, hot-swap
// it into the registry, and rebase the drift monitor.
func (s *Server) retrainRunner(att *attachment) jobRunner {
	return func(ctx context.Context, _ *core.Pipeline, _ JobParams, progress func(float64)) (any, error) {
		defer att.retraining.Store(false)
		att.retrainJobs.Add(1)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ds := att.mon.DatasetSnapshot()
		if ds.Len() < att.minRows {
			return nil, fmt.Errorf("retrain %s: %d rows streamed from feed %s, need %d", att.model, ds.Len(), att.feedName, att.minRows)
		}
		entry, err := s.reg.Get(att.model)
		if err != nil {
			return nil, err
		}
		kind, err := registry.ModelKindFor(entry.Spec.Model)
		if err != nil {
			return nil, err
		}
		seed := entry.Spec.Seed
		if seed == 0 {
			seed = 1
		}
		progress(0.1)
		p2, err := core.NewPipeline(kind, ds, seed)
		if err != nil {
			return nil, fmt.Errorf("retrain %s: %w", att.model, err)
		}
		if entry.Spec.ShapSamples > 0 {
			p2.ShapSamples = entry.Spec.ShapSamples
		}
		progress(0.9)
		// A cancelled job must not swap: the fit is monolithic, so this
		// post-train check is the cancellation point.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		retrains, err := s.reg.Swap(att.model, p2, time.Now())
		if err != nil {
			return nil, err
		}
		// The retrained model defines a new "normal"; rebuild the drift
		// baseline against it.
		att.mon.ResetDrift()
		return RetrainResult{Model: att.model, Feed: att.feedName, Rows: ds.Len(), Retrains: retrains}, nil
	}
}
