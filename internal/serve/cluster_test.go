package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestRequestIDMinting: every response carries X-Request-Id — minted
// when absent, echoed verbatim when the client (or a proxying peer)
// supplies one — and error bodies embed it.
func TestRequestIDMinting(t *testing.T) {
	srv := httptest.NewServer(New(pipeline(t)))
	defer srv.Close()

	resp := getJSON(t, srv, "/healthz")
	wantStatus(t, resp, http.StatusOK)
	minted := resp.Header.Get(HeaderRequestID)
	resp.Body.Close()
	if len(minted) != 16 {
		t.Fatalf("minted request id %q, want 16 hex chars", minted)
	}

	resp2 := getJSON(t, srv, "/healthz")
	id2 := resp2.Header.Get(HeaderRequestID)
	resp2.Body.Close()
	if id2 == minted {
		t.Fatalf("two requests share id %q", minted)
	}

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderRequestID, "trace-abc-123")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get(HeaderRequestID); got != "trace-abc-123" {
		t.Fatalf("supplied id not echoed: %q", got)
	}
}

// TestErrorBodyCarriesRequestID: the JSON error body repeats the
// response's request id so body-only logs can stitch traces.
func TestErrorBodyCarriesRequestID(t *testing.T) {
	srv := httptest.NewServer(New(pipeline(t)))
	defer srv.Close()

	resp := getJSON(t, srv, "/v1/models/no/such/model/schema")
	wantStatus(t, resp, http.StatusNotFound)
	rid := resp.Header.Get(HeaderRequestID)
	body := decode[map[string]string](t, resp)
	if body["error"] == "" {
		t.Fatalf("error body = %v", body)
	}
	if body["request_id"] == "" || body["request_id"] != rid {
		t.Fatalf("body request_id %q != header %q", body["request_id"], rid)
	}
}

// TestHealthNodeIdentity: node_id, version and X-Served-By identify the
// node behind a load balancer; the cluster block stays absent for
// unclustered servers.
func TestHealthNodeIdentity(t *testing.T) {
	s := New(pipeline(t))
	s.NodeID = "node-7"
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp := getJSON(t, srv, "/healthz")
	wantStatus(t, resp, http.StatusOK)
	if got := resp.Header.Get(HeaderServedBy); got != "node-7" {
		t.Fatalf("X-Served-By = %q", got)
	}
	h := decode[HealthResponse](t, resp)
	if h.NodeID != "node-7" || h.Version != Version {
		t.Fatalf("health identity = %q/%q", h.NodeID, h.Version)
	}
	if h.Cluster != nil {
		t.Fatalf("unclustered server must omit cluster block: %+v", h.Cluster)
	}

	resp2 := getJSON(t, srv, "/readyz")
	wantStatus(t, resp2, http.StatusOK)
	rr := decode[ReadyResponse](t, resp2)
	if rr.NodeID != "node-7" || rr.Version != Version || rr.Cluster != nil {
		t.Fatalf("readyz identity = %+v", rr)
	}
}
