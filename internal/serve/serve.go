// Package serve implements the explanation service: a JSON-over-HTTP API
// exposing a trained NFV predictor together with its explanations —
// per-prediction attributions, global importance, and counterfactual
// what-if queries. This is the integration point an operator dashboard
// would consume.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"nfvxai/internal/core"
	"nfvxai/internal/xai/counterfactual"
)

// Server wraps a trained pipeline behind an http.Handler.
type Server struct {
	mu sync.RWMutex
	p  *core.Pipeline

	mux *http.ServeMux
}

// New builds a server over the pipeline.
func New(p *core.Pipeline) *Server {
	s := &Server{p: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /schema", s.handleSchema)
	s.mux.HandleFunc("GET /importance", s.handleImportance)
	s.mux.HandleFunc("POST /predict", s.handlePredict)
	s.mux.HandleFunc("POST /explain", s.handleExplain)
	s.mux.HandleFunc("POST /whatif", s.handleWhatIf)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) pipeline() *core.Pipeline {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.p
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "model": s.pipeline().Kind.String()})
}

// SchemaResponse describes the feature vector the other endpoints expect.
type SchemaResponse struct {
	Model    string   `json:"model"`
	Task     string   `json:"task"`
	Features []string `json:"features"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	p := s.pipeline()
	writeJSON(w, http.StatusOK, SchemaResponse{
		Model:    p.Kind.String(),
		Task:     p.Train.Task.String(),
		Features: p.Train.Names,
	})
}

// featureRequest is the shared request body carrying one feature vector.
type featureRequest struct {
	Features []float64 `json:"features"`
	TopK     int       `json:"topk,omitempty"`
}

func (s *Server) decodeFeatures(w http.ResponseWriter, r *http.Request) (featureRequest, bool) {
	var req featureRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return req, false
	}
	if want := s.pipeline().Train.NumFeatures(); len(req.Features) != want {
		writeError(w, http.StatusBadRequest, "need %d features, got %d", want, len(req.Features))
		return req, false
	}
	return req, true
}

// PredictResponse is the /predict reply.
type PredictResponse struct {
	Prediction float64 `json:"prediction"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeFeatures(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Prediction: s.pipeline().Model.Predict(req.Features)})
}

// Contribution is one feature's share of an explanation.
type Contribution struct {
	Feature string  `json:"feature"`
	Phi     float64 `json:"phi"`
}

// ExplainResponse is the /explain reply.
type ExplainResponse struct {
	Prediction    float64        `json:"prediction"`
	Base          float64        `json:"base"`
	Method        string         `json:"method"`
	Contributions []Contribution `json:"contributions"`
	Report        string         `json:"report"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeFeatures(w, r)
	if !ok {
		return
	}
	p := s.pipeline()
	attr, method, err := p.ExplainInstance(req.Features)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "explain: %v", err)
		return
	}
	topK := req.TopK
	if topK <= 0 {
		topK = 5
	}
	resp := ExplainResponse{
		Prediction: attr.Value,
		Base:       attr.Base,
		Method:     method,
		Report:     core.OperatorReport("prediction explanation", attr, method, topK),
	}
	for _, j := range attr.TopK(topK) {
		resp.Contributions = append(resp.Contributions, Contribution{Feature: attr.Name(j), Phi: attr.Phi[j]})
	}
	writeJSON(w, http.StatusOK, resp)
}

// WhatIfRequest is the /whatif request body.
type WhatIfRequest struct {
	Features  []float64 `json:"features"`
	Op        string    `json:"op"`    // "<=" or ">="
	Value     float64   `json:"value"` // prediction target
	Immutable []string  `json:"immutable,omitempty"`
}

// Change is one modified feature of a counterfactual.
type Change struct {
	Feature string  `json:"feature"`
	From    float64 `json:"from"`
	To      float64 `json:"to"`
}

// WhatIfResponse is the /whatif reply.
type WhatIfResponse struct {
	Valid      bool     `json:"valid"`
	Prediction float64  `json:"prediction"`
	Changes    []Change `json:"changes"`
	Report     string   `json:"report"`
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req WhatIfRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	p := s.pipeline()
	if want := p.Train.NumFeatures(); len(req.Features) != want {
		writeError(w, http.StatusBadRequest, "need %d features, got %d", want, len(req.Features))
		return
	}
	if req.Op != "<=" && req.Op != ">=" {
		writeError(w, http.StatusBadRequest, "op must be <= or >=")
		return
	}
	target := counterfactual.Target{Op: req.Op, Value: req.Value}
	cf, err := p.WhatIf(req.Features, target, req.Immutable)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "whatif: %v", err)
		return
	}
	resp := WhatIfResponse{
		Valid:      cf.Valid,
		Prediction: cf.Prediction,
		Report:     core.WhatIfReport(cf, p.Train.Names, req.Features, target),
	}
	for _, j := range cf.Changed {
		name := fmt.Sprintf("f%d", j)
		if j < len(p.Train.Names) {
			name = p.Train.Names[j]
		}
		resp.Changes = append(resp.Changes, Change{Feature: name, From: req.Features[j], To: cf.X[j]})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ImportanceResponse is the /importance reply.
type ImportanceResponse struct {
	Features []string  `json:"features"`
	Shap     []float64 `json:"shap"`
	Perm     []float64 `json:"perm"`
}

func (s *Server) handleImportance(w http.ResponseWriter, _ *http.Request) {
	p := s.pipeline()
	shapImp, permImp, err := p.GlobalImportance(30)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "importance: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ImportanceResponse{
		Features: p.Train.Names,
		Shap:     shapImp,
		Perm:     permImp,
	})
}
