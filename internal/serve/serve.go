// Package serve implements the versioned, multi-model explanation service:
// a JSON-over-HTTP API exposing a registry of trained NFV predictors
// together with their explanations — per-prediction attributions (single
// and batch), global importance, and counterfactual what-if queries. This
// is the integration point an operator dashboard would consume.
//
// The v1 surface is model-scoped:
//
//	GET  /v1/models                        list models and their lifecycle status
//	POST /v1/models                        train a new scenario×model×target (async, 202)
//	GET  /v1/models/{name}                 one model's status and schema
//	GET  /v1/models/{name}/schema          feature schema
//	GET  /v1/models/{name}/explainers      explanation methods valid for the model
//	GET  /v1/models/{name}/importance      global |SHAP| + permutation importance (cached)
//	POST /v1/models/{name}/predict         predict one instance, or a batch via "instances"
//	POST /v1/models/{name}/explain         attribute one instance, or a batch via "instances"
//	POST /v1/models/{name}/whatif          counterfactual remediation query
//	POST /v1/models/{name}/jobs            submit an async explanation job (202)
//	GET  /v1/models/{name}/jobs            jobs submitted against the model
//
// Explain requests select their method per request: an optional "method"
// names any registered local method ("treeshap", "kernelshap", "lime",
// "anchors", "counterfactual", "intgrad") and "params" carries its typed
// options. Unknown methods or parameters are a 400; a capability mismatch
// (e.g. treeshap on an MLP, or a global method on the explain path) is a
// 409. Without "method" the model's default explainer answers, unchanged
// from the pre-registry behavior.
//
// Expensive global explanations run asynchronously through the jobs
// subsystem, mirroring the training lifecycle:
//
//	GET    /v1/jobs                        list jobs
//	GET    /v1/jobs/{id}                   status, progress, result
//	DELETE /v1/jobs/{id}                   cancel a pending/running job
//
// Model names may contain slashes (the default is scenario/model/target,
// e.g. web/rf/util). POST /v1/models returns 202 Accepted immediately; the
// model trains in the background and flips training → ready (or failed),
// observable via GET /v1/models/{name}. Serving a model that is still
// training yields 409, an unknown model 404, a malformed request 400.
//
// The legacy unversioned endpoints (GET /healthz /schema /importance,
// POST /predict /explain /whatif) remain as thin aliases onto the
// registry's default model.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"nfvxai/internal/cluster"
	"nfvxai/internal/core"
	"nfvxai/internal/feed"
	"nfvxai/internal/registry"
	"nfvxai/internal/xai"
	"nfvxai/internal/xai/counterfactual"
	"nfvxai/internal/xai/evalx"
)

// MaxBatch bounds how many instances one batch-explain request may carry.
const MaxBatch = 256

// Server routes the v1 multi-model API over a model registry.
type Server struct {
	reg  *registry.Registry
	mux  *http.ServeMux
	jobs *jobStore
	hub  *feed.Hub
	// BatchWorkers caps total explain fan-out across ALL concurrent batch
	// requests (0 = GOMAXPROCS). Set before the first batch request; the
	// shared gate is sized once, lazily.
	BatchWorkers int

	// DefaultBudgetMs is the latency budget applied to explain/whatif/
	// importance requests that carry no budget of their own (0 = none:
	// requests run unbounded, the pre-budget behavior).
	DefaultBudgetMs int

	// Admission knobs (admission.go): per-model concurrency budget, wait
	// queue depth, and queue patience. Zero values take the defaults. Set
	// before the first request; the table is sized once, lazily.
	MaxInflight int
	AdmitQueue  int
	AdmitWait   time.Duration

	// Cluster plane (cluster.go): when Cluster is non-nil this server is
	// one node of a sharded fleet — model-scoped requests are
	// reverse-proxied to their consistent-hash owner, and /healthz
	// reports ring ownership, peer liveness and sync lag. NodeID names
	// this node in X-Served-By and health replies (set it even without a
	// Cluster to tell single nodes apart behind a load balancer). Syncer,
	// when set, is only reported on — explaind owns its lifecycle. Logf
	// receives proxy/cluster log lines (nil drops them). All four are set
	// before the first request.
	Cluster *cluster.Cluster
	Syncer  *cluster.Syncer
	NodeID  string
	Logf    func(format string, args ...any)

	proxyOnce sync.Once
	proxy     *http.Client

	gateOnce sync.Once
	gate     chan struct{}

	admitOnce sync.Once
	adm       *admission

	// attachments index the streaming monitors by feed name (feeds.go).
	attachMu    sync.Mutex
	attachments map[string][]*attachment

	closeOnce sync.Once
}

// NewServer builds the API server over an existing registry.
func NewServer(reg *registry.Registry) *Server {
	s := &Server{
		reg:         reg,
		mux:         http.NewServeMux(),
		jobs:        newJobStore(),
		hub:         feed.NewHub(),
		attachments: map[string][]*attachment{},
	}
	s.hub.Max = MaxFeeds
	// Persisted experiment matrices are keyed by job id, and job ids
	// restart from 1 in every process: advance the sequence past any ids
	// already in the store so a post-restart experiment cannot mint a
	// colliding id and silently overwrite a prior sweep's matrix.
	if st := reg.StoreBackend(); st != nil {
		if ids, err := st.ListExperiments(); err == nil {
			for _, id := range ids {
				var n int
				if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > s.jobs.seq {
					s.jobs.seq = n
				}
			}
		}
	}
	// v1, model-scoped. {rest...} (not {name}) because model names contain
	// slashes; routeModel* peel a trailing action segment off themselves.
	s.mux.HandleFunc("GET /v1/models", s.handleListModels)
	s.mux.HandleFunc("POST /v1/models", s.handleCreateModel)
	s.mux.HandleFunc("GET /v1/models/{rest...}", s.routeModelGet)
	s.mux.HandleFunc("POST /v1/models/{rest...}", s.routeModelPost)

	// Artifact import: the explicit pattern wins over the {rest...}
	// wildcard, and "import" is a reserved trailing segment, so no model
	// route is shadowed.
	s.mux.HandleFunc("POST /v1/models/import", s.handleImportModel)

	// The explanation-jobs subsystem (jobs.go).
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDeleteJob)

	// The experiment runner (experiments.go).
	s.mux.HandleFunc("POST /v1/experiments", s.handleCreateExperiment)
	s.mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleGetExperiment)

	// The streaming plane: scenario catalog and live feeds (feeds.go).
	s.mux.HandleFunc("GET /v1/scenarios", s.handleListScenarios)
	s.mux.HandleFunc("POST /v1/scenarios", s.handleCreateScenario)
	s.mux.HandleFunc("GET /v1/scenarios/{name}", s.handleGetScenario)
	s.mux.HandleFunc("GET /v1/feeds", s.handleListFeeds)
	s.mux.HandleFunc("POST /v1/feeds", s.handleCreateFeed)
	s.mux.HandleFunc("GET /v1/feeds/{name}", s.handleGetFeed)
	s.mux.HandleFunc("DELETE /v1/feeds/{name}", s.handleDeleteFeed)
	s.mux.HandleFunc("POST /v1/feeds/{name}/records", s.handleIngest)
	s.mux.HandleFunc("POST /v1/feeds/{name}/attach", s.handleAttach)

	// Health pair: /healthz (liveness + summary) and /readyz (per-model
	// readiness detail; health.go).
	s.mux.HandleFunc("GET /readyz", s.handleReady)

	// The explanation result cache's observability surface (cachez.go).
	s.mux.HandleFunc("GET /v1/cachez", s.handleCachez)

	// Legacy unversioned aliases onto the default model.
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /schema", s.aliasGet(s.handleSchema))
	s.mux.HandleFunc("GET /importance", s.aliasGet(s.handleImportance))
	s.mux.HandleFunc("POST /predict", s.aliasPost(s.handlePredict))
	s.mux.HandleFunc("POST /explain", s.aliasPost(s.handleExplain))
	s.mux.HandleFunc("POST /whatif", s.aliasPost(s.handleWhatIf))
	return s
}

// Hub returns the server's feed hub (explaind uses it for -feed flags).
func (s *Server) Hub() *feed.Hub { return s.hub }

// Close shuts the serving planes down in dependency order: feeds stop
// first (draining the attached monitors, so no new drift-retrain jobs
// can be submitted), then every pending/running job is cancelled AND
// waited for — an in-flight retrain or experiment finishes flushing its
// artifact/matrix to the store before Close returns, so a SIGTERM never
// leaves a torn manifest behind. Idempotent and safe to call while
// requests are in flight — graceful shutdown calls it after
// http.Server.Shutdown returns.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.hub.CloseAll()
		s.attachMu.Lock()
		var mons []*attachment
		for name, atts := range s.attachments {
			mons = append(mons, atts...)
			delete(s.attachments, name)
		}
		s.attachMu.Unlock()
		for _, att := range mons {
			att.mon.Stop()
		}
		s.jobs.cancelAllAndWait()
	})
}

// ensureGate lazily sizes the server-wide explain worker gate.
func (s *Server) ensureGate() chan struct{} {
	s.gateOnce.Do(func() {
		n := s.BatchWorkers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		s.gate = make(chan struct{}, n)
	})
	return s.gate
}

// New wraps a single already-trained pipeline as a one-model server — the
// pre-registry constructor, kept for embedders and tests. The model is
// registered as "default".
func New(p *core.Pipeline) *Server {
	reg := registry.New()
	if _, err := reg.AddReady(registry.Spec{Name: "default"}, p, time.Now()); err != nil {
		panic(err) // fresh registry; cannot collide
	}
	return NewServer(reg)
}

// Registry returns the server's model registry.
func (s *Server) Registry() *registry.Registry { return s.reg }

// ServeHTTP implements http.Handler. Every request gets a request id —
// minted here unless the client (or the proxying peer node) already
// supplied one — echoed on the response and kept on r.Header so a proxy
// hop forwards the same id. X-Served-By names this node so multi-node
// traces show which registry answered.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get(HeaderRequestID)
	if rid == "" {
		rid = newRequestID()
		r.Header.Set(HeaderRequestID, rid)
	}
	w.Header().Set(HeaderRequestID, rid)
	if s.NodeID != "" {
		w.Header().Set(HeaderServedBy, s.NodeID)
	}
	s.mux.ServeHTTP(w, r)
}

// modelActions are the reserved trailing path segments under a model.
var modelGetActions = map[string]bool{"schema": true, "importance": true, "explainers": true, "jobs": true, "stream": true, "artifact": true}
var modelPostActions = map[string]bool{"predict": true, "explain": true, "whatif": true, "jobs": true}

// splitAction splits "web/rf/util/predict" into ("web/rf/util", "predict")
// when the last segment is in actions, else returns (rest, "").
func splitAction(rest string, actions map[string]bool) (name, action string) {
	if i := strings.LastIndexByte(rest, '/'); i >= 0 && actions[rest[i+1:]] {
		return rest[:i], rest[i+1:]
	}
	return rest, ""
}

func (s *Server) routeModelGet(w http.ResponseWriter, r *http.Request) {
	name, action := splitAction(r.PathValue("rest"), modelGetActions)
	if s.proxyToOwner(w, r, name, action) {
		return
	}
	switch action {
	case "schema":
		s.handleSchema(w, r, name)
	case "importance":
		s.handleImportance(w, r, name)
	case "explainers":
		s.handleExplainers(w, r, name)
	case "jobs":
		s.handleListModelJobs(w, r, name)
	case "stream":
		s.handleModelStream(w, r, name)
	case "artifact":
		s.handleExportModel(w, r, name)
	default:
		s.handleModelInfo(w, r, name)
	}
}

func (s *Server) routeModelPost(w http.ResponseWriter, r *http.Request) {
	name, action := splitAction(r.PathValue("rest"), modelPostActions)
	if s.proxyToOwner(w, r, name, action) {
		return
	}
	switch action {
	case "predict":
		s.handlePredict(w, r, name)
	case "explain":
		s.handleExplain(w, r, name)
	case "whatif":
		s.handleWhatIf(w, r, name)
	case "jobs":
		s.handleCreateJob(w, r, name)
	default:
		writeError(w, http.StatusNotFound, "unknown action: POST /v1/models/{name}/{predict|explain|whatif|jobs}")
	}
}

// aliasGet adapts a model-scoped GET handler to a legacy unversioned
// route serving the registry's default model.
func (s *Server) aliasGet(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name, ok := s.defaultModel(w)
		if !ok {
			return
		}
		h(w, r, name)
	}
}

func (s *Server) aliasPost(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return s.aliasGet(h) // same adaptation; split for call-site clarity
}

func (s *Server) defaultModel(w http.ResponseWriter) (string, bool) {
	name := s.reg.DefaultName()
	if name == "" {
		writeError(w, http.StatusNotFound, "no models registered")
		return "", false
	}
	return name, true
}

// lookup resolves name to a servable pipeline, mapping registry errors to
// HTTP: unknown → 404, training/failed → 409.
func (s *Server) lookup(w http.ResponseWriter, name string) (*core.Pipeline, bool) {
	p, err := s.reg.Lookup(name)
	switch {
	case err == nil:
		return p, true
	case errors.Is(err, registry.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, registry.ErrNotReady):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
	return nil, false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	body := map[string]string{"error": fmt.Sprintf(format, args...)}
	// The request id was echoed onto the response headers by ServeHTTP;
	// repeating it in the body lets clients that only log bodies stitch
	// multi-node traces together.
	if rid := w.Header().Get(HeaderRequestID); rid != "" {
		body["request_id"] = rid
	}
	writeJSON(w, status, body)
}

// featureName is the one shared feature-index → display-name resolution
// used by every handler that renders per-feature output.
func featureName(names []string, j int) string {
	if j >= 0 && j < len(names) {
		return names[j]
	}
	return fmt.Sprintf("f%d", j)
}

// ─── registry endpoints ─────────────────────────────────────────────────

// ModelInfo is one registry entry as served by the API.
type ModelInfo struct {
	Name      string    `json:"name"`
	Scenario  string    `json:"scenario,omitempty"`
	Model     string    `json:"model,omitempty"`
	Target    string    `json:"target,omitempty"`
	Hours     float64   `json:"hours,omitempty"`
	Seed      int64     `json:"seed,omitempty"`
	Status    string    `json:"status"`
	Error     string    `json:"error,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	// ReadyAt is the zero time until the model leaves training; it moves
	// forward each time a streaming retrain hot-swaps the pipeline.
	ReadyAt time.Time `json:"ready_at"`
	// Retrains counts drift-triggered (and manual) hot-swap retrains.
	Retrains int `json:"retrains,omitempty"`
	// Kind/Task/Features describe the live pipeline (ready models only).
	Kind     string   `json:"kind,omitempty"`
	Task     string   `json:"task,omitempty"`
	Features []string `json:"features,omitempty"`
}

func modelInfo(e registry.Entry) ModelInfo {
	info := ModelInfo{
		Name:      e.Spec.Name,
		Scenario:  e.Spec.Scenario,
		Model:     e.Spec.Model,
		Target:    e.Spec.Target,
		Hours:     e.Spec.Hours,
		Seed:      e.Spec.Seed,
		Status:    e.Status.String(),
		Error:     e.Err,
		CreatedAt: e.CreatedAt,
		ReadyAt:   e.ReadyAt,
		Retrains:  e.Retrains,
	}
	if e.Pipeline != nil && e.Pipeline.Train != nil {
		info.Kind = e.Pipeline.Kind.String()
		info.Task = e.Pipeline.Train.Task.String()
		info.Features = e.Pipeline.Train.Names
	}
	return info
}

// ModelListResponse is the GET /v1/models reply.
type ModelListResponse struct {
	Default string      `json:"default,omitempty"`
	Models  []ModelInfo `json:"models"`
}

func (s *Server) handleListModels(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.List()
	resp := ModelListResponse{Default: s.reg.DefaultName(), Models: make([]ModelInfo, 0, len(entries))}
	for _, e := range entries {
		resp.Models = append(resp.Models, modelInfo(e))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreateModel(w http.ResponseWriter, r *http.Request) {
	var sp registry.Spec
	if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	e, err := s.reg.Create(sp)
	if err != nil {
		if errors.Is(err, registry.ErrExists) {
			writeError(w, http.StatusConflict, "%v", err)
		} else {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, modelInfo(e))
}

// MaxArtifactBytes bounds an imported model artifact (64 MiB — an order
// of magnitude above the largest zoo pipeline trained at MaxHours).
const MaxArtifactBytes = 64 << 20

// handleExportModel serves the named ready model as a self-contained
// binary artifact (spec + scaler + model + splits + background). The
// bytes round-trip through POST /v1/models/import on any explaind.
func (s *Server) handleExportModel(w http.ResponseWriter, _ *http.Request, name string) {
	data, err := s.reg.ExportArtifact(name)
	switch {
	case err == nil:
	case errors.Is(err, registry.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
		return
	case errors.Is(err, registry.ErrNotReady):
		writeError(w, http.StatusConflict, "%v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", strings.ReplaceAll(name, "/", "_")+".nfva"))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleImportModel registers an exported artifact as a ready model
// (hot: no training). The optional ?name= query overrides the name
// embedded in the artifact's spec. Corrupt artifacts are the client's
// 400; name collisions are 409.
func (s *Server) handleImportModel(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, MaxArtifactBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading artifact: %v", err)
		return
	}
	if len(data) > MaxArtifactBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "artifact exceeds %d bytes", MaxArtifactBytes)
		return
	}
	name, err := s.reg.ImportArtifact(data, r.URL.Query().Get("name"), time.Now())
	switch {
	case err == nil:
	case errors.Is(err, registry.ErrExists):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, registry.ErrCorruptArtifact), errors.Is(err, registry.ErrArtifactVersion):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := s.reg.Get(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, modelInfo(e))
}

func (s *Server) handleModelInfo(w http.ResponseWriter, _ *http.Request, name string) {
	e, err := s.reg.Get(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, modelInfo(e))
}

// ─── health and schema ──────────────────────────────────────────────────

// HealthResponse is the GET /healthz reply.
type HealthResponse struct {
	// Status is "ok" when the default model is servable, else "degraded"
	// (served with 503 so readiness probes hold traffic back).
	Status string `json:"status"`
	// Models counts registered models; Ready counts servable ones.
	Models int `json:"models"`
	Ready  int `json:"ready"`
	// Default is the model the legacy endpoints alias to; Model is its
	// kind when servable (legacy field).
	Default string `json:"default,omitempty"`
	Model   string `json:"model,omitempty"`
	// States maps each model to its health state (ready | degraded |
	// shedding | training | failed; see health.go). A model mid-retrain
	// keeps serving its old pipeline but reports "degraded" here.
	States map[string]string `json:"states,omitempty"`
	// Store summarizes the artifact store's fault-tolerance state when
	// the store is instrumented (registry.RetryStore).
	Store *registry.StoreHealth `json:"store,omitempty"`
	// NodeID and Version identify the node and build behind a load
	// balancer; Cluster is the fleet view when this node is clustered
	// (ring ownership, peer liveness, sync lag — health.go).
	NodeID  string         `json:"node_id,omitempty"`
	Version string         `json:"version,omitempty"`
	Cluster *ClusterHealth `json:"cluster,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{
		Status: "ok", Default: s.reg.DefaultName(),
		NodeID: s.NodeID, Version: Version, Cluster: s.clusterHealth(),
	}
	entries := s.reg.List()
	resp.States = make(map[string]string, len(entries))
	for _, e := range entries {
		resp.Models++
		if e.Status == registry.StatusReady {
			resp.Ready++
		}
		resp.States[e.Spec.Name] = s.modelState(e)
	}
	resp.Store = s.storeHealth()
	status := http.StatusOK
	if p, err := s.reg.Lookup(resp.Default); err == nil {
		resp.Model = p.Kind.String()
		// Servable but impaired (mid-retrain or shedding): report
		// "degraded" without gating traffic — the old pipeline still
		// answers every request.
		if st := resp.States[resp.Default]; st == StateDegraded || st == StateShedding {
			resp.Status = "degraded"
		}
	} else {
		// The default model is missing, training or failed: every legacy
		// endpoint would 404/409, so health checks must not admit traffic.
		resp.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// SchemaResponse describes the feature vector the serving endpoints expect.
type SchemaResponse struct {
	Name     string   `json:"name"`
	Model    string   `json:"model"`
	Task     string   `json:"task"`
	Features []string `json:"features"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request, name string) {
	p, ok := s.lookup(w, name)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, SchemaResponse{
		Name:     name,
		Model:    p.Kind.String(),
		Task:     p.Train.Task.String(),
		Features: p.Train.Names,
	})
}

// ─── predict and explain ────────────────────────────────────────────────

// featureRequest is the shared request body carrying one feature vector,
// or (for batch explain) several under "instances". Explain requests may
// additionally select a registered method with typed params and request
// faithfulness metrics.
type featureRequest struct {
	Features  []float64   `json:"features,omitempty"`
	Instances [][]float64 `json:"instances,omitempty"`
	TopK      int         `json:"topk,omitempty"`
	// Method names a registered local explanation method ("" = the
	// model's default).
	Method string `json:"method,omitempty"`
	// Params carries the method's typed options; unknown keys are a 400.
	Params json.RawMessage `json:"params,omitempty"`
	// Evaluate attaches evalx faithfulness metrics to each explanation.
	Evaluate bool `json:"evaluate,omitempty"`
	// BudgetMs is the request's latency budget in milliseconds. It wins
	// over the X-Budget-Ms header, which wins over the server default.
	// Zero inherits; the work runs under a context deadline and the
	// degradation ladder fits the method to it.
	BudgetMs int `json:"budget_ms,omitempty"`
	// NoCache forces a fresh computation, bypassing the explanation
	// result cache in both directions (no read, no store). The response
	// is tagged X-Cache: bypass.
	NoCache bool `json:"no_cache,omitempty"`
}

// MaxBudgetMs caps a request latency budget (10 minutes): beyond it, use
// the async jobs API instead of holding a connection open.
const MaxBudgetMs = 600_000

// requestBudget resolves the effective latency budget for one request:
// body "budget_ms" > X-Budget-Ms header > Server.DefaultBudgetMs. Zero
// means unbudgeted.
func (s *Server) requestBudget(r *http.Request, bodyMs int) (time.Duration, error) {
	ms := bodyMs
	if ms == 0 {
		if h := r.Header.Get("X-Budget-Ms"); h != "" {
			v, err := strconv.Atoi(h)
			if err != nil {
				return 0, fmt.Errorf("invalid X-Budget-Ms %q: not an integer", h)
			}
			ms = v
		}
	}
	if ms == 0 {
		ms = s.DefaultBudgetMs
	}
	if ms < 0 {
		return 0, fmt.Errorf("budget_ms must be >= 0, got %d", ms)
	}
	if ms > MaxBudgetMs {
		return 0, fmt.Errorf("budget_ms %d exceeds limit %d; use the jobs API for long explanations", ms, MaxBudgetMs)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// decodeStrict decodes a raw "params" object into v, rejecting unknown
// keys: a misspelled parameter name is a client error, not silently
// ignored. Shared by explain params (xai.Options) and job params.
func decodeStrict(raw json.RawMessage, v any) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid params: %w", err)
	}
	return nil
}

func decodeFeatures(w http.ResponseWriter, r *http.Request, p *core.Pipeline) (featureRequest, bool) {
	var req featureRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return req, false
	}
	want := p.Train.NumFeatures()
	if req.Instances != nil {
		if req.Features != nil {
			writeError(w, http.StatusBadRequest, "provide features or instances, not both")
			return req, false
		}
		if len(req.Instances) == 0 {
			writeError(w, http.StatusBadRequest, "instances must not be empty")
			return req, false
		}
		if len(req.Instances) > MaxBatch {
			writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Instances), MaxBatch)
			return req, false
		}
		for i, x := range req.Instances {
			if len(x) != want {
				writeError(w, http.StatusBadRequest, "instance %d: need %d features, got %d", i, want, len(x))
				return req, false
			}
		}
		return req, true
	}
	if len(req.Features) != want {
		writeError(w, http.StatusBadRequest, "need %d features, got %d", want, len(req.Features))
		return req, false
	}
	return req, true
}

// PredictResponse is the predict reply.
type PredictResponse struct {
	Prediction float64 `json:"prediction"`
}

// BatchPredictResponse is the predict reply when "instances" was sent; the
// batch is scored in one pass through the model's batch-inference path.
type BatchPredictResponse struct {
	Count       int       `json:"count"`
	Predictions []float64 `json:"predictions"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, name string) {
	p, ok := s.lookup(w, name)
	if !ok {
		return
	}
	req, ok := decodeFeatures(w, r, p)
	if !ok {
		return
	}
	if req.Instances != nil {
		preds := p.PredictBatch(req.Instances)
		writeJSON(w, http.StatusOK, BatchPredictResponse{Count: len(preds), Predictions: preds})
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Prediction: p.Model.Predict(req.Features)})
}

// Contribution is one feature's share of an explanation.
type Contribution struct {
	Feature string  `json:"feature"`
	Phi     float64 `json:"phi"`
	// CIHalf is the 95% confidence half-width of Phi when the progressive
	// estimator produced it (budgeted KernelSHAP); omitted for exact or
	// single-pass methods.
	CIHalf *float64 `json:"ci_half,omitempty"`
}

// Evaluation carries evalx faithfulness metrics for one explanation,
// attached when the request sets "evaluate": true so operators can
// compare methods on the same instance.
type Evaluation struct {
	// AdditivityError is |base + Σφ − prediction|, the local-accuracy
	// violation (0 for exact methods like TreeSHAP). Omitted for methods
	// whose attributions are not additive decompositions (anchors,
	// counterfactual) — the quantity is meaningless there.
	AdditivityError *float64 `json:"additivity_error,omitempty"`
	// DeletionAUC is the area under the attribution-guided deletion curve;
	// lower means the top-ranked features collapse the prediction faster
	// (a more faithful ranking). Meaningful for any method that ranks
	// features; omitted (never reported as a perfect-looking 0) when the
	// curve cannot be computed.
	DeletionAUC *float64 `json:"deletion_auc,omitempty"`
}

// evaluateAttr computes the faithfulness metrics for one explanation.
// Additivity error only applies to methods whose attributions are
// additive decompositions; the deletion AUC applies to any ranking.
func evaluateAttr(p *core.Pipeline, attr xai.Attribution, x []float64, method string) *Evaluation {
	var ev Evaluation
	if m, ok := xai.LookupMethod(method); !ok || m.Caps.Additive {
		// Unregistered method names only reach here from embedders
		// calling explainResponse directly; assume additive like the
		// pre-registry explainers.
		ae := attr.AdditivityError()
		ev.AdditivityError = &ae
	}
	if curve, err := evalx.Deletion(p.Model, x, attr.Ranking(), p.Background); err == nil {
		auc := curve.AUC()
		ev.DeletionAUC = &auc
	}
	return &ev
}

// AnytimeInfo reports how a latency-budgeted request was actually served:
// which degradation-ladder rung ran, whether fidelity was reduced, and how
// far the progressive estimator got before stopping.
type AnytimeInfo struct {
	// BudgetMs is the effective budget the request ran under.
	BudgetMs int64 `json:"budget_ms,omitempty"`
	// Rung is the method that ran; Requested is what the client asked for
	// (or the model default) when the ladder changed it.
	Rung      string `json:"rung,omitempty"`
	Requested string `json:"requested,omitempty"`
	// Downgraded is true when the rung or its sample budget was reduced to
	// fit the latency budget; Reason says why in one clause.
	Downgraded bool   `json:"downgraded,omitempty"`
	Reason     string `json:"reason,omitempty"`
	// Converged reports whether the progressive estimator's confidence
	// intervals tightened below tolerance (false = deadline or sample
	// budget cut it short: a valid partial result). Omitted for
	// non-progressive methods.
	Converged *bool `json:"converged,omitempty"`
	// SamplesUsed / Blocks are the coalitions and blocks actually spent.
	SamplesUsed int `json:"samples_used,omitempty"`
	Blocks      int `json:"blocks,omitempty"`
}

// ExplainResponse is the single-instance explain reply, and one element of
// a batch reply.
type ExplainResponse struct {
	Prediction    float64        `json:"prediction"`
	Base          float64        `json:"base"`
	Method        string         `json:"method"`
	Contributions []Contribution `json:"contributions"`
	Report        string         `json:"report,omitempty"`
	Evaluation    *Evaluation    `json:"evaluation,omitempty"`
	// Anytime is present on latency-budgeted requests (and whenever the
	// progressive estimator ran) — see AnytimeInfo.
	Anytime *AnytimeInfo `json:"anytime,omitempty"`
	// Error marks a failed instance in a budgeted batch reply; the other
	// fields are zero when set.
	Error string `json:"error,omitempty"`
}

// BatchExplainResponse is the explain reply when "instances" was sent.
type BatchExplainResponse struct {
	Method       string            `json:"method"`
	Count        int               `json:"count"`
	Explanations []ExplainResponse `json:"explanations"`
	// Failed counts instances whose Error field is set (budgeted batches
	// return partial results rather than failing the whole request).
	Failed int `json:"failed,omitempty"`
	// Anytime carries the request-level budget/ladder decision; per-item
	// progress is on each explanation.
	Anytime *AnytimeInfo `json:"anytime,omitempty"`
	// Cache tallies how the batch was served (hits never touched the
	// worker pool); present when a result cache is attached.
	Cache *core.BatchCacheStats `json:"cache,omitempty"`
}

func explainResponse(p *core.Pipeline, attr xai.Attribution, x []float64, method string, topK int, withReport, evaluate bool) ExplainResponse {
	resp := ExplainResponse{
		Prediction: attr.Value,
		Base:       attr.Base,
		Method:     method,
	}
	if withReport {
		resp.Report = core.OperatorReport("prediction explanation", attr, method, topK)
	}
	for _, j := range attr.TopK(topK) {
		c := Contribution{
			Feature: featureName(p.Train.Names, j),
			Phi:     attr.Phi[j],
		}
		if attr.Diag != nil && j < len(attr.Diag.CIHalf) {
			half := attr.Diag.CIHalf[j]
			c.CIHalf = &half
		}
		resp.Contributions = append(resp.Contributions, c)
	}
	if d := attr.Diag; d != nil {
		conv := d.Converged
		resp.Anytime = &AnytimeInfo{Converged: &conv, SamplesUsed: d.SamplesUsed, Blocks: d.Blocks}
	}
	if evaluate {
		resp.Evaluation = evaluateAttr(p, attr, x, method)
	}
	return resp
}

// decorateAnytime overlays the budget/ladder decision onto a response's
// Anytime block (creating it when the method produced no Diag).
func decorateAnytime(a *AnytimeInfo, plan *xai.Plan, budget time.Duration) *AnytimeInfo {
	if plan == nil && budget == 0 {
		return a
	}
	if a == nil {
		a = &AnytimeInfo{}
	}
	a.BudgetMs = budget.Milliseconds()
	if plan != nil {
		a.Rung = plan.Method
		a.Downgraded = plan.Downgraded
		a.Reason = plan.Reason
		if plan.Downgraded {
			a.Requested = plan.Requested
		}
	}
	return a
}

// writeExplainerError maps method-resolution failures to HTTP: unknown
// method names and bad params are the client's 400; capability mismatches
// (treeshap on an MLP, a global method on the explain path) are a 409.
func writeExplainerError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, xai.ErrUnknownMethod):
		writeError(w, http.StatusBadRequest, "%v (registered: %s)", err, strings.Join(xai.MethodNames(), ", "))
	case errors.Is(err, xai.ErrInvalidOptions):
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, xai.ErrUnsupportedModel):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "explain: %v", err)
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, name string) {
	p, ok := s.lookup(w, name)
	if !ok {
		return
	}
	req, ok := decodeFeatures(w, r, p)
	if !ok {
		return
	}
	topK := req.TopK
	var opts xai.Options
	if err := decodeStrict(req.Params, &opts); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// params.topk shapes the ranked response like the top-level "topk"
	// (which wins when both are set); ExplainerFor normalizes it out of
	// the cache key.
	if topK <= 0 {
		topK = opts.TopK
	}
	if topK <= 0 {
		topK = 5
	}
	budget, err := s.requestBudget(r, req.BudgetMs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Admission: per-model concurrency budget with a bounded wait queue;
	// a saturated model sheds this request with 503 + Retry-After.
	release, ok := s.admitRequest(w, r, name)
	if !ok {
		return
	}
	defer release()

	ctx := r.Context()
	method := req.Method
	var plan *xai.Plan
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
		// Fit the method to the budget: resolve the effective method and
		// sample count first so the ladder reduces relative to what would
		// actually run, then walk down rungs if it still cannot fit.
		if method == "" {
			method = core.DefaultMethod(p.Model)
		}
		eff := opts
		if eff.Samples <= 0 && method == "kernelshap" {
			eff.Samples = p.ShapSampleBudget()
		}
		pl := xai.PlanBudget(p.Model, method, eff, budget, xai.CostModel{
			PredNs:     p.PredictCostNs(),
			Background: len(p.Background),
			Features:   p.Train.NumFeatures(),
		})
		plan = &pl
		method = pl.Method
		opts = pl.Opts
	}
	e, method, err := p.ExplainerFor(method, opts)
	if err != nil {
		writeExplainerError(w, err)
		return
	}
	if req.Instances != nil {
		// Batch fan-out shares one explainer instance across workers, so
		// methods registered without the concurrent-use capability only
		// serve single-instance requests.
		if m, ok := xai.LookupMethod(method); ok && !m.Caps.SupportsBatch {
			writeError(w, http.StatusConflict, "method %q does not support batch fan-out; send one instance per request", method)
			return
		}
		// One server-wide gate bounds explain concurrency: K simultaneous
		// batch requests share cap(gate) workers rather than each spawning
		// a GOMAXPROCS pool and oversubscribing the cores. The cache-aware
		// path serves tier-1 hits without consuming gate slots and fans
		// only the misses out (single-flighted across concurrent batches).
		attrs, errs, cstats := p.ExplainBatchWith(ctx, e, method, opts, req.Instances, s.ensureGate(), req.NoCache)
		setCacheHeader(w, p, batchOutcome(cstats))
		nOK, failed := 0, 0
		var firstErr error
		for _, ie := range errs {
			if ie == nil {
				nOK++
			} else {
				failed++
				if firstErr == nil {
					firstErr = ie
				}
			}
		}
		if nOK == 0 && firstErr != nil {
			// Nothing to return: a budget that expired before any instance
			// finished is a typed timeout, anything else a plain failure.
			writeExplainFailure(w, firstErr, budget)
			return
		}
		if budget == 0 && firstErr != nil {
			// Unbudgeted batches keep the legacy all-or-nothing contract.
			writeError(w, http.StatusInternalServerError, "explain: %v", firstErr)
			return
		}
		// Per-instance evaluation is model work too (a deletion sweep per
		// instance), so it fans out through the same gate as the explains
		// instead of running as a serial tail on the request goroutine.
		var evals []*Evaluation
		if req.Evaluate {
			evals = make([]*Evaluation, len(attrs))
			var wg sync.WaitGroup
			for i := range attrs {
				if errs[i] != nil {
					continue
				}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					select {
					case s.gate <- struct{}{}:
					case <-ctx.Done():
						return // abandoned request: leave evals[i] nil
					}
					defer func() { <-s.gate }()
					evals[i] = evaluateAttr(p, attrs[i], req.Instances[i], method)
				}(i)
			}
			wg.Wait()
		}
		resp := BatchExplainResponse{Method: method, Count: len(attrs), Failed: failed}
		if p.ResultCache != nil {
			cs := cstats
			resp.Cache = &cs
		}
		for i, attr := range attrs {
			if errs[i] != nil {
				resp.Explanations = append(resp.Explanations, ExplainResponse{Error: explainErrorLabel(errs[i])})
				continue
			}
			// Batch replies skip the prose report: dashboards consuming
			// batches want the numbers, and N reports dominate the payload.
			er := explainResponse(p, attr, req.Instances[i], method, topK, false, false)
			if evals != nil {
				er.Evaluation = evals[i]
			}
			resp.Explanations = append(resp.Explanations, er)
		}
		resp.Anytime = decorateAnytime(resp.Anytime, plan, budget)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	attr, outcome, err := p.ExplainWith(ctx, e, method, opts, req.Features, req.NoCache)
	if err != nil {
		writeExplainFailure(w, err, budget)
		return
	}
	setCacheHeader(w, p, outcome.String())
	resp := explainResponse(p, attr, req.Features, method, topK, true, req.Evaluate)
	resp.Anytime = decorateAnytime(resp.Anytime, plan, budget)
	writeJSON(w, http.StatusOK, resp)
}

// writeExplainFailure maps an explain-path error to HTTP: an expired
// latency budget with no result in hand is a typed 504 (the client can
// retry with a larger budget), everything else the legacy 500.
func writeExplainFailure(w http.ResponseWriter, err error, budget time.Duration) {
	if errors.Is(err, context.DeadlineExceeded) {
		if budget > 0 {
			writeError(w, http.StatusGatewayTimeout, "explain: latency budget of %s exhausted before any result: %v", budget, err)
		} else {
			writeError(w, http.StatusGatewayTimeout, "explain: deadline exceeded: %v", err)
		}
		return
	}
	writeError(w, http.StatusInternalServerError, "explain: %v", err)
}

// explainErrorLabel renders one failed batch instance's error, typing
// budget exhaustion so clients can distinguish it from model failures.
func explainErrorLabel(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "latency budget exhausted: " + err.Error()
	}
	return err.Error()
}

// ─── explainer discovery ────────────────────────────────────────────────

// ExplainerInfo describes one registered method as applicable to a model.
type ExplainerInfo struct {
	Name string `json:"name"`
	// Kind is "local" (per-instance explain) or "global" (jobs API).
	Kind string `json:"kind"`
	// Default marks the method explain requests use when none is named.
	Default      bool             `json:"default,omitempty"`
	Capabilities xai.Capabilities `json:"capabilities"`
	// DefaultParams are the option fields the method reads, with the
	// values an option-less explain request against this model actually
	// uses (registry defaults overlaid with pipeline settings).
	DefaultParams xai.Options `json:"default_params"`
}

// ExplainerListResponse is the GET /v1/models/{name}/explainers reply.
type ExplainerListResponse struct {
	Model string `json:"model"`
	// DefaultMethod answers explain requests that name no method.
	DefaultMethod string          `json:"default_method"`
	Explainers    []ExplainerInfo `json:"explainers"`
}

func (s *Server) handleExplainers(w http.ResponseWriter, _ *http.Request, name string) {
	p, ok := s.lookup(w, name)
	if !ok {
		return
	}
	def := core.DefaultMethod(p.Model)
	resp := ExplainerListResponse{Model: name, DefaultMethod: def}
	for _, m := range p.Methods() {
		resp.Explainers = append(resp.Explainers, ExplainerInfo{
			Name:          m.Name,
			Kind:          m.Kind.String(),
			Default:       m.Name == def,
			Capabilities:  m.Caps,
			DefaultParams: p.DefaultOptions(m),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ─── what-if ────────────────────────────────────────────────────────────

// WhatIfRequest is the whatif request body.
type WhatIfRequest struct {
	Features  []float64 `json:"features"`
	Op        string    `json:"op"`    // "<=" or ">="
	Value     float64   `json:"value"` // prediction target
	Immutable []string  `json:"immutable,omitempty"`
	// BudgetMs is the latency budget (same precedence as explain).
	BudgetMs int `json:"budget_ms,omitempty"`
}

// Change is one modified feature of a counterfactual.
type Change struct {
	Feature string  `json:"feature"`
	From    float64 `json:"from"`
	To      float64 `json:"to"`
}

// WhatIfResponse is the whatif reply.
type WhatIfResponse struct {
	Valid      bool     `json:"valid"`
	Prediction float64  `json:"prediction"`
	Changes    []Change `json:"changes"`
	Report     string   `json:"report"`
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request, name string) {
	p, ok := s.lookup(w, name)
	if !ok {
		return
	}
	var req WhatIfRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if want := p.Train.NumFeatures(); len(req.Features) != want {
		writeError(w, http.StatusBadRequest, "need %d features, got %d", want, len(req.Features))
		return
	}
	if req.Op != "<=" && req.Op != ">=" {
		writeError(w, http.StatusBadRequest, "op must be <= or >=")
		return
	}
	budget, err := s.requestBudget(r, req.BudgetMs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	release, ok := s.admitRequest(w, r, name)
	if !ok {
		return
	}
	defer release()
	ctx := r.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	target := counterfactual.Target{Op: req.Op, Value: req.Value}
	cf, err := p.WhatIf(ctx, req.Features, target, req.Immutable)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrUnknownFeature):
			writeError(w, http.StatusBadRequest, "%v", err)
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "whatif: latency budget exhausted: %v", err)
		default:
			writeError(w, http.StatusInternalServerError, "whatif: %v", err)
		}
		return
	}
	resp := WhatIfResponse{
		Valid:      cf.Valid,
		Prediction: cf.Prediction,
		Report:     core.WhatIfReport(cf, p.Train.Names, req.Features, target),
	}
	for _, j := range cf.Changed {
		resp.Changes = append(resp.Changes, Change{
			Feature: featureName(p.Train.Names, j),
			From:    req.Features[j],
			To:      cf.X[j],
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ─── importance ─────────────────────────────────────────────────────────

// importanceInstances is how many test rows the global |SHAP| profile
// aggregates — shared by the synchronous endpoint and the
// global-importance job so their (cached) results coincide exactly.
const importanceInstances = 30

// ImportanceResponse is the importance reply.
type ImportanceResponse struct {
	Features []string  `json:"features"`
	Shap     []float64 `json:"shap"`
	Perm     []float64 `json:"perm"`
}

func (s *Server) handleImportance(w http.ResponseWriter, r *http.Request, name string) {
	p, ok := s.lookup(w, name)
	if !ok {
		return
	}
	// GET request: the budget arrives via header or server default only.
	budget, err := s.requestBudget(r, 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	release, ok := s.admitRequest(w, r, name)
	if !ok {
		return
	}
	defer release()
	ctx := r.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	shapImp, permImp, err := p.GlobalImportance(ctx, importanceInstances)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, "importance: latency budget exhausted: %v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "importance: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ImportanceResponse{
		Features: p.Train.Names,
		Shap:     shapImp,
		Perm:     permImp,
	})
}
