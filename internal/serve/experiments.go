// The experiments API: POST /v1/experiments submits a declarative
// scenario×model×method sweep (internal/experiment) that executes on the
// jobs infrastructure — same 202/progress/cancellation lifecycle as any
// other job — and, when the registry has a store attached, persists its
// result matrix so the sweep survives the process. GET /v1/experiments
// and GET /v1/experiments/{id} read live jobs first and fall back to
// persisted matrices, so results from before a restart stay readable.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"nfvxai/internal/core"
	"nfvxai/internal/experiment"
	"nfvxai/internal/registry"
)

// JobExperiment is the job kind experiments run under. It is submitted
// via POST /v1/experiments, not the model-scoped jobs endpoint (an
// experiment spans many models).
const JobExperiment = "experiment"

// ExperimentInfo is one experiment as served by the API: the job
// lifecycle fields when live, or a synthesized done-state for matrices
// restored from the store after a restart.
type ExperimentInfo struct {
	ID       string  `json:"id"`
	Name     string  `json:"name,omitempty"`
	Status   string  `json:"status"`
	Progress float64 `json:"progress"`
	Error    string  `json:"error,omitempty"`
	// Persisted marks results served from the store rather than the live
	// job table.
	Persisted bool `json:"persisted,omitempty"`
	// Result is the experiment.Matrix, present once done.
	Result any `json:"result,omitempty"`
}

// ExperimentListResponse is the GET /v1/experiments reply.
type ExperimentListResponse struct {
	Experiments []ExperimentInfo `json:"experiments"`
}

func (s *Server) handleCreateExperiment(w http.ResponseWriter, r *http.Request) {
	var sp experiment.Spec
	if err := decodeStrictBody(r, &sp); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sp = sp.WithDefaults()
	if err := sp.Validate(s.reg.Scenarios); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The runner needs its own id (the store key) before it starts; the
	// buffered channel hands it over without racing submit's goroutine.
	idCh := make(chan string, 1)
	snap, err := s.jobs.submit("", JobExperiment, JobParams{}, nil, s.experimentRunner(sp, idCh))
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	idCh <- snap.ID
	writeJSON(w, http.StatusAccepted, ExperimentInfo{
		ID:       snap.ID,
		Name:     sp.Name,
		Status:   snap.Status,
		Progress: snap.Progress,
	})
}

// experimentRunner adapts one sweep to the jobRunner contract. The
// pipeline argument is unused: experiments train their own pipelines per
// plan unit.
func (s *Server) experimentRunner(sp experiment.Spec, idCh <-chan string) jobRunner {
	return func(ctx context.Context, _ *core.Pipeline, _ JobParams, progress func(float64)) (any, error) {
		var id string
		select {
		case id = <-idCh:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		runner := experiment.Runner{Scenarios: s.reg.Scenarios}
		m, err := runner.Run(ctx, sp, progress)
		if err != nil {
			return nil, err
		}
		// Persist the matrix when a store is attached: the whole point of
		// the sweep is an artifact that outlives the process. A persist
		// failure fails the job loudly rather than silently dropping the
		// durable copy.
		if st := s.reg.StoreBackend(); st != nil {
			data, err := json.Marshal(m)
			if err != nil {
				return nil, fmt.Errorf("experiment: encode matrix: %w", err)
			}
			if err := st.PutExperiment(id, data); err != nil {
				return nil, fmt.Errorf("experiment: persist matrix: %w", err)
			}
		}
		return m, nil
	}
}

func (s *Server) handleListExperiments(w http.ResponseWriter, _ *http.Request) {
	resp := ExperimentListResponse{Experiments: []ExperimentInfo{}}
	seen := map[string]bool{}
	for _, j := range s.jobs.list("") {
		if j.Kind != JobExperiment {
			continue
		}
		seen[j.ID] = true
		resp.Experiments = append(resp.Experiments, ExperimentInfo{
			ID: j.ID, Status: j.Status, Progress: j.Progress, Error: j.Error,
		})
	}
	if st := s.reg.StoreBackend(); st != nil {
		ids, err := st.ListExperiments()
		if err == nil {
			for _, id := range ids {
				if seen[id] {
					continue
				}
				resp.Experiments = append(resp.Experiments, ExperimentInfo{
					ID: id, Status: "done", Progress: 1, Persisted: true,
				})
			}
		}
	}
	sort.Slice(resp.Experiments, func(i, j int) bool { return resp.Experiments[i].ID < resp.Experiments[j].ID })
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := s.jobs.get(id); ok && j.Kind == JobExperiment {
		writeJSON(w, http.StatusOK, ExperimentInfo{
			ID: j.ID, Status: j.Status, Progress: j.Progress, Error: j.Error, Result: j.Result,
		})
		return
	}
	if st := s.reg.StoreBackend(); st != nil {
		data, err := st.GetExperiment(id)
		if err == nil {
			writeJSON(w, http.StatusOK, ExperimentInfo{
				ID: id, Status: "done", Progress: 1, Persisted: true, Result: json.RawMessage(data),
			})
			return
		}
		if !errors.Is(err, registry.ErrArtifactNotFound) {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	writeError(w, http.StatusNotFound, "experiment %q not found", id)
}

// decodeStrictBody decodes a JSON request body rejecting unknown fields.
func decodeStrictBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	return nil
}
