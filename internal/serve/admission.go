// Admission control for the model-work endpoints (explain, whatif,
// importance): each model gets a concurrency budget and a bounded wait
// queue. A request that cannot start within the queue's patience — or
// that arrives when the queue itself is full — is shed with
// 503 + Retry-After instead of piling onto a saturated model, so a burst
// degrades into fast, typed rejections rather than collapsing every
// in-flight request's latency. Recent shedding is surfaced as the
// "shedding" state in /healthz and /readyz.
package serve

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Admission defaults; override via the Server fields before serving.
const (
	// DefaultAdmitQueue bounds how many requests may wait per model.
	DefaultAdmitQueue = 32
	// DefaultAdmitWait bounds how long one queued request may wait.
	DefaultAdmitWait = 2 * time.Second
	// shedWindow is how long after a shed a model reports "shedding".
	shedWindow = 5 * time.Second
)

// errSaturated is the typed load-shed error: the model's concurrency
// budget and wait queue are both full (or the wait timed out).
var errSaturated = errors.New("serve: model at explain concurrency limit")

// admitState is one model's admission bookkeeping.
type admitState struct {
	sem      chan struct{}
	waiting  atomic.Int32
	inflight atomic.Int32
	shed     atomic.Uint64
	lastShed atomic.Int64 // unix nanos of the most recent load-shed
}

// admission is the per-model semaphore table.
type admission struct {
	capacity int
	queue    int
	wait     time.Duration

	mu  sync.Mutex
	per map[string]*admitState
}

func newAdmission(capacity, queue int, wait time.Duration) *admission {
	if capacity <= 0 {
		capacity = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = DefaultAdmitQueue
	}
	if wait <= 0 {
		wait = DefaultAdmitWait
	}
	return &admission{capacity: capacity, queue: queue, wait: wait, per: map[string]*admitState{}}
}

func (a *admission) state(model string) *admitState {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.per[model]
	if !ok {
		st = &admitState{sem: make(chan struct{}, a.capacity)}
		a.per[model] = st
	}
	return st
}

// acquire admits one unit of model work, waiting in the bounded queue if
// the model is at capacity. It returns a release func on success;
// errSaturated when shed; the context error when the caller's request
// died first.
func (a *admission) acquire(ctx context.Context, model string) (func(), error) {
	st := a.state(model)
	release := func() {
		st.inflight.Add(-1)
		<-st.sem
	}
	select {
	case st.sem <- struct{}{}:
		st.inflight.Add(1)
		return release, nil
	default:
	}
	if int(st.waiting.Load()) >= a.queue {
		st.markShed()
		return nil, errSaturated
	}
	st.waiting.Add(1)
	defer st.waiting.Add(-1)
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case st.sem <- struct{}{}:
		st.inflight.Add(1)
		return release, nil
	case <-timer.C:
		st.markShed()
		return nil, errSaturated
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (st *admitState) markShed() {
	st.shed.Add(1)
	st.lastShed.Store(time.Now().UnixNano())
}

// shedding reports whether the model shed load within shedWindow — the
// health signal that tells probes the model is saturated right now.
func (a *admission) shedding(model string) bool {
	a.mu.Lock()
	st, ok := a.per[model]
	a.mu.Unlock()
	if !ok {
		return false
	}
	last := st.lastShed.Load()
	return last != 0 && time.Since(time.Unix(0, last)) < shedWindow
}

// snapshot returns (inflight, waiting, total shed) for health output.
func (a *admission) snapshot(model string) (int, int, uint64) {
	a.mu.Lock()
	st, ok := a.per[model]
	a.mu.Unlock()
	if !ok {
		return 0, 0, 0
	}
	return int(st.inflight.Load()), int(st.waiting.Load()), st.shed.Load()
}

// ensureAdmit lazily builds the server's admission table from its knobs.
func (s *Server) ensureAdmit() *admission {
	s.admitOnce.Do(func() {
		s.adm = newAdmission(s.MaxInflight, s.AdmitQueue, s.AdmitWait)
	})
	return s.adm
}

// admitRequest runs admission for one request, writing the shed (503 +
// Retry-After) or expiry response itself. The returned release must be
// called when the admitted work finishes.
func (s *Server) admitRequest(w http.ResponseWriter, r *http.Request, model string) (func(), bool) {
	adm := s.ensureAdmit()
	release, err := adm.acquire(r.Context(), model)
	if err == nil {
		return release, true
	}
	if errors.Is(err, errSaturated) {
		retry := int(adm.wait / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusServiceUnavailable, "model %q: explain capacity saturated (%d in flight, %d queued); retry", model, adm.capacity, adm.queue)
		return nil, false
	}
	// The request's own context died while queued: the client is gone or
	// its budget burned out before any work started.
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "model %q: request expired while queued: %v", model, err)
		return nil, false
	}
	writeError(w, http.StatusServiceUnavailable, "model %q: %v", model, err)
	return nil, false
}
