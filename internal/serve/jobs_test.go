package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nfvxai/internal/core"
)

// blockGate coordinates the test-only "test-block" job kind: the runner
// reports progress 0.5, signals started, then parks until release or
// cancellation.
var blockGate struct {
	mu      sync.Mutex
	started chan struct{}
	release chan struct{}
}

func init() {
	// A controllable job kind so lifecycle tests observe mid-run states
	// deterministically; registered only in the test binary.
	jobRunners["test-block"] = func(ctx context.Context, _ *core.Pipeline, _ JobParams, progress func(float64)) (any, error) {
		blockGate.mu.Lock()
		started, release := blockGate.started, blockGate.release
		blockGate.mu.Unlock()
		progress(0.5)
		if started != nil {
			close(started)
		}
		select {
		case <-release:
			return map[string]string{"outcome": "ran"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func armBlockGate() (started, release chan struct{}) {
	started, release = make(chan struct{}), make(chan struct{})
	blockGate.mu.Lock()
	blockGate.started, blockGate.release = started, release
	blockGate.mu.Unlock()
	return started, release
}

// jobsServer builds a one-model server with a job-completion channel.
func jobsServer(t *testing.T) (*Server, *httptest.Server, chan string) {
	t.Helper()
	s := New(pipeline(t))
	done := make(chan string, 16)
	s.NotifyJobs(done)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv, done
}

func waitJob(t *testing.T, done chan string, want string) {
	t.Helper()
	select {
	case id := <-done:
		if id != want {
			t.Fatalf("job done for %q want %q", id, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("timed out waiting for job %q", want)
	}
}

func submitJob(t *testing.T, srv *httptest.Server, model string, body any) JobInfo {
	t.Helper()
	resp := postJSON(t, srv, "/v1/models/"+model+"/jobs", body)
	wantStatus(t, resp, http.StatusAccepted)
	return decode[JobInfo](t, resp)
}

func getJob(t *testing.T, srv *httptest.Server, id string) JobInfo {
	t.Helper()
	resp := getJSON(t, srv, "/v1/jobs/"+id)
	wantStatus(t, resp, http.StatusOK)
	return decode[JobInfo](t, resp)
}

func TestJobLifecycleSubmitProgressResult(t *testing.T) {
	_, srv, done := jobsServer(t)
	started, release := armBlockGate()

	info := submitJob(t, srv, "default", JobRequest{Kind: "test-block"})
	if info.Status != "pending" && info.Status != "running" {
		t.Fatalf("submitted status %q", info.Status)
	}
	if info.Model != "default" || info.Kind != "test-block" || info.ID == "" {
		t.Fatalf("submitted %+v", info)
	}

	<-started
	mid := getJob(t, srv, info.ID)
	if mid.Status != "running" {
		t.Fatalf("mid-run status %q", mid.Status)
	}
	if mid.Progress < 0.5 || mid.Progress >= 1 {
		t.Fatalf("mid-run progress %v", mid.Progress)
	}

	close(release)
	waitJob(t, done, info.ID)
	fin := getJob(t, srv, info.ID)
	if fin.Status != "done" || fin.Progress != 1 || fin.FinishedAt.IsZero() {
		t.Fatalf("finished %+v", fin)
	}
	res, ok := fin.Result.(map[string]any)
	if !ok || res["outcome"] != "ran" {
		t.Fatalf("result %+v", fin.Result)
	}

	// The model-scoped listing sees it; an unknown model 404s.
	resp := getJSON(t, srv, "/v1/models/default/jobs")
	wantStatus(t, resp, http.StatusOK)
	list := decode[JobListResponse](t, resp)
	if len(list.Jobs) == 0 {
		t.Fatal("model job listing empty")
	}
	nf := getJSON(t, srv, "/v1/models/nope/jobs")
	wantStatus(t, nf, http.StatusNotFound)
	nf.Body.Close()
}

func TestJobCancellationMidRun(t *testing.T) {
	_, srv, done := jobsServer(t)
	started, _ := armBlockGate()

	info := submitJob(t, srv, "default", JobRequest{Kind: "test-block"})
	<-started

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)
	resp.Body.Close()

	waitJob(t, done, info.ID)
	fin := getJob(t, srv, info.ID)
	if fin.Status != "cancelled" {
		t.Fatalf("after DELETE: status %q (err %q)", fin.Status, fin.Error)
	}
	if fin.Result != nil {
		t.Fatalf("cancelled job has a result: %+v", fin.Result)
	}
	// Deleting again is an idempotent no-op on the terminal snapshot.
	req2, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+info.ID, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp2, http.StatusOK)
	resp2.Body.Close()
}

func TestJobValidation(t *testing.T) {
	_, srv, _ := jobsServer(t)

	// Unknown kind → 400 naming the accepted kinds.
	resp := postJSON(t, srv, "/v1/models/default/jobs", JobRequest{Kind: "transmogrify"})
	wantStatus(t, resp, http.StatusBadRequest)
	errBody := decode[map[string]string](t, resp)
	if !strings.Contains(errBody["error"], "global-importance") {
		t.Fatalf("error %q does not list kinds", errBody["error"])
	}
	// Unknown param key → 400.
	resp2 := postJSON(t, srv, "/v1/models/default/jobs",
		map[string]any{"kind": "global-importance", "params": map[string]any{"bogus": 1}})
	wantStatus(t, resp2, http.StatusBadRequest)
	resp2.Body.Close()
	// Unknown model → 404.
	resp3 := postJSON(t, srv, "/v1/models/nope/jobs", JobRequest{Kind: "global-importance"})
	wantStatus(t, resp3, http.StatusNotFound)
	resp3.Body.Close()
	// Unknown job id → 404 on GET and DELETE.
	resp4 := getJSON(t, srv, "/v1/jobs/job-999999")
	wantStatus(t, resp4, http.StatusNotFound)
	resp4.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/job-999999", nil)
	resp5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp5, http.StatusNotFound)
	resp5.Body.Close()
}

// TestGlobalImportanceJobMatchesSync pins the acceptance criterion: the
// asynchronous global-importance job and the synchronous importance
// endpoint agree within 1e-9 on the same model.
func TestGlobalImportanceJobMatchesSync(t *testing.T) {
	_, srv, done := jobsServer(t)

	info := submitJob(t, srv, "default", JobRequest{Kind: "global-importance"})
	waitJob(t, done, info.ID)
	fin := getJob(t, srv, info.ID)
	if fin.Status != "done" {
		t.Fatalf("job %+v", fin)
	}
	raw, err := json.Marshal(fin.Result)
	if err != nil {
		t.Fatal(err)
	}
	var jobRes ImportanceResponse
	if err := json.Unmarshal(raw, &jobRes); err != nil {
		t.Fatal(err)
	}

	resp := getJSON(t, srv, "/v1/models/default/importance")
	wantStatus(t, resp, http.StatusOK)
	sync := decode[ImportanceResponse](t, resp)
	if len(jobRes.Shap) != len(sync.Shap) || len(jobRes.Shap) == 0 {
		t.Fatalf("widths: job %d sync %d", len(jobRes.Shap), len(sync.Shap))
	}
	for j := range sync.Shap {
		if math.Abs(jobRes.Shap[j]-sync.Shap[j]) > 1e-9 {
			t.Fatalf("shap[%d]: job %v sync %v", j, jobRes.Shap[j], sync.Shap[j])
		}
		if math.Abs(jobRes.Perm[j]-sync.Perm[j]) > 1e-9 {
			t.Fatalf("perm[%d]: job %v sync %v", j, jobRes.Perm[j], sync.Perm[j])
		}
	}
}

func TestPDPGridAndSurrogateJobs(t *testing.T) {
	p := pipeline(t)
	_, srv, done := jobsServer(t)

	// pdp-grid over two named features.
	info := submitJob(t, srv, "default", map[string]any{
		"kind":   "pdp-grid",
		"params": map[string]any{"grid_size": 8, "features": []string{p.Train.Names[0], p.Train.Names[1]}},
	})
	waitJob(t, done, info.ID)
	fin := getJob(t, srv, info.ID)
	if fin.Status != "done" {
		t.Fatalf("pdp job %+v", fin)
	}
	raw, _ := json.Marshal(fin.Result)
	var pdpRes PDPGridResult
	if err := json.Unmarshal(raw, &pdpRes); err != nil {
		t.Fatal(err)
	}
	if len(pdpRes.Curves) != 2 || len(pdpRes.Curves[0].Grid) == 0 {
		t.Fatalf("pdp curves %+v", pdpRes)
	}
	if pdpRes.Curves[0].Name != p.Train.Names[0] {
		t.Fatalf("curve name %q", pdpRes.Curves[0].Name)
	}
	// Unknown feature fails the job (status failed, error recorded).
	bad := submitJob(t, srv, "default", map[string]any{
		"kind": "pdp-grid", "params": map[string]any{"features": []string{"no_such"}},
	})
	waitJob(t, done, bad.ID)
	if fin := getJob(t, srv, bad.ID); fin.Status != "failed" || !strings.Contains(fin.Error, "no_such") {
		t.Fatalf("bad-feature job %+v", fin)
	}

	// surrogate-tree.
	info2 := submitJob(t, srv, "default", map[string]any{
		"kind": "surrogate-tree", "params": map[string]any{"max_depth": 3},
	})
	waitJob(t, done, info2.ID)
	fin2 := getJob(t, srv, info2.ID)
	if fin2.Status != "done" {
		t.Fatalf("surrogate job %+v", fin2)
	}
	raw2, _ := json.Marshal(fin2.Result)
	var sur SurrogateResult
	if err := json.Unmarshal(raw2, &sur); err != nil {
		t.Fatal(err)
	}
	if sur.Depth <= 0 || sur.Depth > 3 || sur.Leaves <= 0 {
		t.Fatalf("surrogate %+v", sur)
	}
}

func TestCleverHansAuditJob(t *testing.T) {
	_, srv, done := jobsServer(t)
	info := submitJob(t, srv, "default", map[string]any{
		"kind": "cleverhans-audit", "params": map[string]any{"strength": 0.95},
	})
	waitJob(t, done, info.ID)
	fin := getJob(t, srv, info.ID)
	if fin.Status != "done" {
		t.Fatalf("audit job %+v", fin)
	}
	raw, _ := json.Marshal(fin.Result)
	var res core.CleverHansResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.LeakStrength != 0.95 || res.ArtifactRank < 1 {
		t.Fatalf("audit result %+v", res)
	}
}

// TestConcurrentJobsAndExplains drives jobs and explain requests against
// one model at the same time; run under -race in CI.
func TestConcurrentJobsAndExplains(t *testing.T) {
	p := pipeline(t)
	_, srv, done := jobsServer(t)

	// Two jobs start in the background while explain traffic hammers the
	// same pipeline.
	j1 := submitJob(t, srv, "default", map[string]any{"kind": "global-importance"})
	j2 := submitJob(t, srv, "default", map[string]any{"kind": "surrogate-tree"})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			x := p.Test.X[w]
			for i := 0; i < 3; i++ {
				resp, err := http.Post(srv.URL+"/v1/models/default/explain", "application/json",
					strings.NewReader(`{"features":`+marshal(x)+`,"method":"lime","params":{"samples":100}}`))
				if err != nil {
					t.Errorf("explain during jobs: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("explain during jobs: %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()

	finished := map[string]bool{}
	for i := 0; i < 2; i++ {
		select {
		case id := <-done:
			finished[id] = true
		case <-time.After(60 * time.Second):
			t.Fatal("timed out waiting for concurrent jobs")
		}
	}
	for _, id := range []string{j1.ID, j2.ID} {
		if !finished[id] {
			t.Fatalf("job %s did not finish (finished: %v)", id, finished)
		}
		if fin := getJob(t, srv, id); fin.Status != "done" {
			t.Fatalf("concurrent job %s: %+v", id, fin)
		}
	}
}

// marshal renders a float slice as its JSON array for hand-built bodies.
func marshal(x []float64) string {
	b, _ := json.Marshal(x)
	return string(b)
}

func TestJobStoreEvictsOldestFinished(t *testing.T) {
	st := newJobStore()
	base := time.Now()
	add := func(id string, status JobStatus, age time.Duration) {
		st.jobs[id] = &job{id: id, status: status, finishedAt: base.Add(-age), cancel: func() {}}
	}
	for i := 0; i < evictBatch+10; i++ {
		add(fmt.Sprintf("old-%03d", i), JobDone, time.Hour+time.Duration(i)*time.Second)
	}
	add("fresh-done", JobDone, 0)
	add("active", JobRunning, 0)

	st.mu.Lock()
	st.evictFinishedLocked()
	st.mu.Unlock()

	if _, ok := st.jobs["active"]; !ok {
		t.Fatal("running job evicted")
	}
	if _, ok := st.jobs["fresh-done"]; !ok {
		t.Fatal("newest finished job evicted before older ones")
	}
	// Exactly evictBatch of the oldest finished jobs are gone.
	remainingOld := 0
	for id := range st.jobs {
		if strings.HasPrefix(id, "old-") {
			remainingOld++
		}
	}
	if remainingOld != 10 {
		t.Fatalf("remaining old finished jobs %d want 10", remainingOld)
	}
	// The very oldest (largest age ⇒ highest index) were the ones evicted,
	// and the least old survived.
	if _, ok := st.jobs[fmt.Sprintf("old-%03d", evictBatch+9)]; ok {
		t.Fatal("oldest finished job survived eviction")
	}
	if _, ok := st.jobs["old-000"]; !ok {
		t.Fatal("newest of the old finished jobs was evicted out of order")
	}
}
