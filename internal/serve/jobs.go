// The explanation-jobs subsystem: expensive global explanations run
// asynchronously with the same lifecycle shape as model training in the
// registry (submit → 202, observe status/progress, result or failure),
// plus cooperative cancellation through context. One store serves every
// model; job ids are process-local and monotonically increasing.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/dataset"
	"nfvxai/internal/xai/pdp"
	"nfvxai/internal/xai/surrogate"
)

// Job kinds accepted by POST /v1/models/{name}/jobs.
const (
	JobGlobalImportance = "global-importance"
	JobPDPGrid          = "pdp-grid"
	JobSurrogateTree    = "surrogate-tree"
	JobCleverHansAudit  = "cleverhans-audit"
	// JobRetrain retrains an attached model from its feed's streamed
	// dataset and hot-swaps the result into the registry (feeds.go). It
	// is submitted automatically on drift and manually via the jobs API
	// (params.feed selects the attachment).
	JobRetrain = "retrain"
)

// JobStatus is one job's lifecycle state, mirroring the registry's
// training lifecycle with an explicit cancelled terminal state.
type JobStatus int

const (
	JobPending JobStatus = iota
	JobRunning
	JobDone
	JobFailed
	JobCancelled
)

// String implements fmt.Stringer.
func (s JobStatus) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("JobStatus(%d)", int(s))
	}
}

// JobParams is the typed parameter set shared by the job kinds; each kind
// documents which fields it reads. Unknown keys in the request are a 400.
type JobParams struct {
	// N is how many test instances global-importance aggregates
	// (default 30, matching GET .../importance).
	N int `json:"n,omitempty"`
	// GridSize is the pdp-grid resolution (default 20).
	GridSize int `json:"grid_size,omitempty"`
	// Features restricts pdp-grid to named features (default: all).
	Features []string `json:"features,omitempty"`
	// MaxDepth bounds the surrogate-tree depth (default 4).
	MaxDepth int `json:"max_depth,omitempty"`
	// Strength is the cleverhans-audit injected leak strength (default
	// 0.9). A pointer distinguishes the omitted field from an explicit 0,
	// which is the legitimate clean-control audit.
	Strength *float64 `json:"strength,omitempty"`
	// Seed overrides the pipeline seed for seeded job kinds.
	Seed int64 `json:"seed,omitempty"`
	// Feed selects which attachment a retrain job trains from; it may be
	// omitted when the model is attached to exactly one feed.
	Feed string `json:"feed,omitempty"`
}

// JobRequest is the POST /v1/models/{name}/jobs body.
type JobRequest struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params,omitempty"`
}

// JobInfo is one job as served by the API.
type JobInfo struct {
	ID string `json:"id"`
	// Model is empty for jobs that span models (experiments).
	Model  string `json:"model,omitempty"`
	Kind   string `json:"kind"`
	Status string `json:"status"`
	// Progress advances 0 → 1 while the job runs.
	Progress  float64   `json:"progress"`
	Error     string    `json:"error,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	// StartedAt / FinishedAt are the zero time until the transition.
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
	// Result is the kind-specific payload, present once status is "done".
	Result any `json:"result,omitempty"`
}

// JobListResponse is the GET /v1/jobs reply.
type JobListResponse struct {
	Jobs []JobInfo `json:"jobs"`
}

// job is the mutable record behind JobInfo snapshots; the store mutex
// guards every field.
type job struct {
	id, model, kind string
	params          JobParams
	status          JobStatus
	progress        float64
	result          any
	err             string
	createdAt       time.Time
	startedAt       time.Time
	finishedAt      time.Time
	cancel          context.CancelFunc
}

// maxStoredJobs bounds the job table. When a submission finds it full,
// the oldest *finished* jobs (and their retained results) are evicted to
// make room, so a long-lived process with periodic jobs never wedges;
// 429 is reserved for the pathological case of maxStoredJobs jobs all
// still pending or running.
const maxStoredJobs = 4096

// evictBatch is how many finished jobs one eviction pass removes; a
// batch amortizes the full-table scan across many submissions.
const evictBatch = 64

// errShuttingDown reports a submission racing shutdown; handlers map it
// to 503 (fail over to another instance), distinct from the 429 a full
// job table earns (back off and retry here).
var errShuttingDown = errors.New("server is shutting down")

// writeSubmitError maps jobStore.submit failures to HTTP.
func writeSubmitError(w http.ResponseWriter, err error) {
	if errors.Is(err, errShuttingDown) {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeError(w, http.StatusTooManyRequests, "%v", err)
}

// jobStore is the concurrent-safe job table.
type jobStore struct {
	mu     sync.Mutex
	seq    int
	jobs   map[string]*job
	notify chan<- string
	// running tracks in-flight job goroutines so shutdown can wait for
	// them to finish flushing their artifacts (cancelAllAndWait);
	// closed rejects submissions that race shutdown — a job started
	// after the cancel sweep would be neither cancelled nor waited for.
	running sync.WaitGroup
	closed  bool
}

func newJobStore() *jobStore {
	return &jobStore{jobs: map[string]*job{}}
}

// NotifyJobs routes every finished job's id to ch, mirroring
// registry.NotifyBuilds. Call before submitting; sends are blocking, so
// the channel must be drained.
func (s *Server) NotifyJobs(ch chan<- string) {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	s.jobs.notify = ch
}

func (st *jobStore) snapshotLocked(j *job) JobInfo {
	return JobInfo{
		ID:         j.id,
		Model:      j.model,
		Kind:       j.kind,
		Status:     j.status.String(),
		Progress:   j.progress,
		Error:      j.err,
		CreatedAt:  j.createdAt,
		StartedAt:  j.startedAt,
		FinishedAt: j.finishedAt,
		Result:     j.result,
	}
}

func (st *jobStore) get(id string) (JobInfo, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return st.snapshotLocked(j), true
}

func (st *jobStore) list(model string) []JobInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]JobInfo, 0, len(st.jobs))
	for _, j := range st.jobs {
		if model == "" || j.model == model {
			out = append(out, st.snapshotLocked(j))
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// evictFinishedLocked removes up to evictBatch of the oldest terminal
// (done/failed/cancelled) jobs. Callers must hold the store mutex.
func (st *jobStore) evictFinishedLocked() {
	type finished struct {
		id string
		at time.Time
	}
	var done []finished
	for id, j := range st.jobs {
		if j.status == JobDone || j.status == JobFailed || j.status == JobCancelled {
			done = append(done, finished{id, j.finishedAt})
		}
	}
	sort.Slice(done, func(i, k int) bool { return done[i].at.Before(done[k].at) })
	if len(done) > evictBatch {
		done = done[:evictBatch]
	}
	for _, f := range done {
		delete(st.jobs, f.id)
	}
}

// jobRunner executes one job kind against a ready pipeline. progress
// receives completion fractions in [0, 1]; implementations return with
// ctx's error once it is cancelled, at the granularity of their work
// units (per explained instance / feature column for the importance and
// pdp kinds; per phase for the monolithic model-training kinds, whose
// fits are not interruptible). A runner that completes under a cancelled
// ctx still lands in status "cancelled", never "done".
type jobRunner func(ctx context.Context, p *core.Pipeline, jp JobParams, progress func(float64)) (any, error)

var jobRunners = map[string]jobRunner{
	JobGlobalImportance: runGlobalImportance,
	JobPDPGrid:          runPDPGrid,
	JobSurrogateTree:    runSurrogateTree,
	JobCleverHansAudit:  runCleverHansAudit,
}

// jobKindNames lists the accepted kinds, sorted, for error messages.
// JobRetrain is appended by hand: it is not in jobRunners because its
// runner closes over server streaming state (feeds.go).
func jobKindNames() []string {
	names := make([]string, 0, len(jobRunners)+1)
	for k := range jobRunners {
		names = append(names, k)
	}
	names = append(names, JobRetrain)
	sort.Strings(names)
	return names
}

// ─── handlers ───────────────────────────────────────────────────────────

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request, name string) {
	p, ok := s.lookup(w, name)
	if !ok {
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	var jp JobParams
	if err := decodeStrict(req.Params, &jp); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	run, ok := jobRunners[req.Kind]
	if !ok {
		if req.Kind != JobRetrain {
			writeError(w, http.StatusBadRequest, "unknown job kind %q (accepted: %s)",
				req.Kind, strings.Join(jobKindNames(), ", "))
			return
		}
		// Manual retrain shares the drift-triggered path: resolve the
		// model's feed attachment and claim its in-flight slot.
		att, err := s.findAttachment(name, jp.Feed)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if !att.retraining.CompareAndSwap(false, true) {
			writeError(w, http.StatusConflict, "retrain already in flight for %q", name)
			return
		}
		snap, err := s.jobs.submit(name, req.Kind, jp, p, s.retrainRunner(att))
		if err != nil {
			// No job started, so the runner's defer will never release
			// the in-flight slot the CAS just claimed; release it here or
			// no retrain could ever run again.
			att.retraining.Store(false)
			writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, snap)
		return
	}

	snap, err := s.jobs.submit(name, req.Kind, jp, p, run)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, snap)
}

// submit registers and starts one job, returning its initial snapshot.
// It fails only when the table is full of unfinished jobs.
func (st *jobStore) submit(model, kind string, jp JobParams, p *core.Pipeline, run jobRunner) (JobInfo, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return JobInfo{}, errShuttingDown
	}
	if len(st.jobs) >= maxStoredJobs {
		st.evictFinishedLocked()
	}
	if len(st.jobs) >= maxStoredJobs {
		st.mu.Unlock()
		return JobInfo{}, fmt.Errorf("job table full (%d active jobs)", maxStoredJobs)
	}
	st.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:        fmt.Sprintf("job-%06d", st.seq),
		model:     model,
		kind:      kind,
		params:    jp,
		status:    JobPending,
		createdAt: time.Now(),
		cancel:    cancel,
	}
	st.jobs[j.id] = j
	snap := st.snapshotLocked(j)
	st.running.Add(1)
	st.mu.Unlock()

	go st.run(ctx, j, p, run)
	return snap, nil
}

// cancelAll cancels every job's context — process shutdown. Runners
// observe the cancellation and drive their jobs to "cancelled".
func (st *jobStore) cancelAll() {
	st.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(st.jobs))
	for _, j := range st.jobs {
		cancels = append(cancels, j.cancel)
	}
	st.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

// cancelAllAndWait closes the store to new submissions, cancels every
// job and then blocks until every runner goroutine has returned.
// Runners write their artifacts (retrained pipelines, experiment
// matrices) before returning, so once this returns the store holds no
// torn state from in-flight jobs — the ordering guarantee Server.Close
// gives SIGTERM handling. The closed flag is set under the same mutex
// the cancel sweep snapshots under, so a submission either lands before
// the sweep (and is cancelled and waited for) or is rejected.
func (st *jobStore) cancelAllAndWait() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
	st.cancelAll()
	st.running.Wait()
}

// run executes the job in its own goroutine, driving the lifecycle
// pending → running → done | failed | cancelled. A runner error that is
// (or wraps) the context's cancellation is recorded as cancelled, not
// failed: the operator asked for it.
func (st *jobStore) run(ctx context.Context, j *job, p *core.Pipeline, run jobRunner) {
	st.mu.Lock()
	j.status = JobRunning
	j.startedAt = time.Now()
	st.mu.Unlock()

	result, err := run(ctx, p, j.params, func(f float64) {
		st.mu.Lock()
		if f > j.progress { // progress never moves backwards
			j.progress = f
		}
		st.mu.Unlock()
	})

	st.mu.Lock()
	j.finishedAt = time.Now()
	switch {
	case ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Cancellation wins even when the runner raced to completion: the
		// operator asked for the job to stop, so it must never surface as
		// "done". The partial/expired result is dropped.
		j.status = JobCancelled
		if err != nil {
			j.err = err.Error()
		} else {
			j.err = ctx.Err().Error()
		}
	case err == nil:
		j.status = JobDone
		j.progress = 1
		j.result = result
	default:
		j.status = JobFailed
		j.err = err.Error()
	}
	notify := st.notify
	st.mu.Unlock()
	j.cancel() // release the context's resources
	// The runner has returned and its store writes are flushed: release
	// shutdown waiters before the (possibly slow, test-drained) notify
	// send so cancelAllAndWait never deadlocks on an undrained channel.
	st.running.Done()
	if notify != nil {
		notify <- j.id
	}
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	info, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, JobListResponse{Jobs: s.jobs.list("")})
}

func (s *Server) handleListModelJobs(w http.ResponseWriter, _ *http.Request, name string) {
	// The model must exist (404 otherwise); training/failed models can
	// still list their (necessarily empty) job history.
	if _, err := s.reg.Get(name); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, JobListResponse{Jobs: s.jobs.list(name)})
}

// handleDeleteJob cancels a pending/running job via its context; the
// runner observes the cancellation and flips the job to "cancelled".
// Deleting a finished job is a no-op returning its terminal snapshot, so
// cancellation is idempotent.
func (s *Server) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st := s.jobs
	st.mu.Lock()
	j, ok := st.jobs[id]
	if !ok {
		st.mu.Unlock()
		writeError(w, http.StatusNotFound, "job %q not found", id)
		return
	}
	cancel := j.cancel
	snap := st.snapshotLocked(j)
	st.mu.Unlock()
	cancel()
	writeJSON(w, http.StatusOK, snap)
}

// ─── job runners ────────────────────────────────────────────────────────

// runGlobalImportance computes the cached global |SHAP| + permutation
// profile through the pipeline's batched fan-out path; its result matches
// the synchronous GET .../importance endpoint exactly (same cache).
func runGlobalImportance(ctx context.Context, p *core.Pipeline, jp JobParams, progress func(float64)) (any, error) {
	n := jp.N
	if n <= 0 {
		n = importanceInstances
	}
	shapImp, permImp, err := p.GlobalImportanceProgress(ctx, n, progress)
	if err != nil {
		return nil, err
	}
	return ImportanceResponse{Features: p.Train.Names, Shap: shapImp, Perm: permImp}, nil
}

// PDPCurve is one feature's partial-dependence summary in a pdp-grid
// job result.
type PDPCurve struct {
	Feature          int       `json:"feature"`
	Name             string    `json:"name"`
	Grid             []float64 `json:"grid"`
	Mean             []float64 `json:"mean"`
	Range            float64   `json:"range"`
	MonotoneFraction float64   `json:"monotone_fraction"`
}

// PDPGridResult is the pdp-grid job result.
type PDPGridResult struct {
	Curves []PDPCurve `json:"curves"`
}

// pdpMaxRows caps the rows each curve sweeps; beyond a few hundred the
// marginal mean is stable and the grid cost is pure latency.
const pdpMaxRows = 256

func runPDPGrid(ctx context.Context, p *core.Pipeline, jp JobParams, progress func(float64)) (any, error) {
	rows := p.Test.X
	if len(rows) > pdpMaxRows {
		rows = rows[:pdpMaxRows]
	}
	var feats []int
	if len(jp.Features) > 0 {
		for _, name := range jp.Features {
			j := p.Train.FeatureIndex(name)
			if j < 0 {
				return nil, fmt.Errorf("pdp-grid: %q: %w", name, core.ErrUnknownFeature)
			}
			feats = append(feats, j)
		}
	} else {
		for j := 0; j < p.Train.NumFeatures(); j++ {
			feats = append(feats, j)
		}
	}
	out := PDPGridResult{Curves: make([]PDPCurve, 0, len(feats))}
	for i, j := range feats {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		curve, err := pdp.Compute(p.Model, rows, j, pdp.Config{GridSize: jp.GridSize})
		if err != nil {
			return nil, fmt.Errorf("pdp-grid: feature %d: %w", j, err)
		}
		out.Curves = append(out.Curves, PDPCurve{
			Feature:          j,
			Name:             featureName(p.Train.Names, j),
			Grid:             curve.Grid,
			Mean:             curve.Mean,
			Range:            curve.Range(),
			MonotoneFraction: curve.MonotoneFraction(),
		})
		progress(float64(i+1) / float64(len(feats)))
	}
	return out, nil
}

// SurrogateResult is the surrogate-tree job result.
type SurrogateResult struct {
	FidelityR2 float64 `json:"fidelity_r2"`
	Agreement  float64 `json:"agreement,omitempty"`
	Depth      int     `json:"depth"`
	Leaves     int     `json:"leaves"`
}

func runSurrogateTree(ctx context.Context, p *core.Pipeline, jp JobParams, progress func(float64)) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	progress(0.1)
	res, err := surrogate.Fit(p.Model, p.Train, p.Test, jp.MaxDepth)
	if err != nil {
		return nil, fmt.Errorf("surrogate-tree: %w", err)
	}
	return SurrogateResult{
		FidelityR2: res.FidelityR2,
		Agreement:  res.Agreement,
		Depth:      res.Depth,
		Leaves:     res.Leaves,
	}, nil
}

func runCleverHansAudit(ctx context.Context, p *core.Pipeline, jp JobParams, progress func(float64)) (any, error) {
	strength := 0.9
	if jp.Strength != nil {
		strength = *jp.Strength
	}
	seed := jp.Seed
	if seed == 0 {
		seed = p.Seed
	}
	// Rebuild a full dataset from the pipeline's frozen splits; the audit
	// re-splits (and deep-clones) it before injecting the artifact, so the
	// serving pipeline's rows are never touched.
	ds := &dataset.Dataset{
		Names: append([]string(nil), p.Train.Names...),
		X:     append(append([][]float64(nil), p.Train.X...), p.Test.X...),
		Y:     append(append([]float64(nil), p.Train.Y...), p.Test.Y...),
		Task:  p.Train.Task,
	}
	progress(0.05)
	res, err := core.CleverHansAudit(ctx, p.Kind, ds, strength, seed)
	if err != nil {
		return nil, fmt.Errorf("cleverhans-audit: %w", err)
	}
	return res, nil
}
