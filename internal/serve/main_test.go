package serve

import (
	"testing"

	"nfvxai/internal/testutil/leakcheck"
)

// TestMain fails the package when serving goroutines (job runners, SSE
// writers, feed attachments) outlive the tests — the shutdown contract
// Server.Close promises.
func TestMain(m *testing.M) { leakcheck.Main(m) }
