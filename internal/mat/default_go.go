//go:build !matblocked

package mat

// defaultBackendName is the build-time kernel backend: the pure-Go
// loops unless the binary is built with -tags matblocked.
const defaultBackendName = "go"
