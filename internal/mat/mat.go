// Package mat provides the small dense linear-algebra kernel used by the
// machine-learning and explanation packages. It is deliberately minimal:
// row-major dense matrices, the factorizations needed for least squares
// (Cholesky, QR), and the handful of BLAS-1/2/3 style operations the rest
// of the repository needs. Everything is float64 and single-goroutine.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols
}

// NewDense allocates a rows×cols zero matrix. It panics if either dimension
// is non-positive.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (len must be rows*cols) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// Reshape resizes m to rows×cols in place, reusing the backing array
// when it has capacity (growing it otherwise) and returns m. Contents
// are undefined after a reshape — callers must fully overwrite before
// reading. This is the pooled-workspace primitive: explainer hot paths
// keep a Dense in a sync.Pool and Reshape it per call instead of
// allocating with NewDense.
func (m *Dense) Reshape(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.data) < n {
		m.data = make([]float64, n) //lint:allow poolalloc workspace growth; amortized by pooled reuse
	}
	m.data = m.data[:n]
	m.rows, m.cols = rows, cols
	return m
}

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	//lint:allow poolalloc result escapes to the caller; a copy is the contract
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	//lint:allow poolalloc clone by definition allocates its own backing
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Mul returns the matrix product a*b. Hot paths should prefer MulInto
// with a pooled destination; Mul allocates the result.
func Mul(a, b *Dense) *Dense {
	return MulInto(a, b, NewDense(a.rows, b.cols))
}

// MulInto computes dst = a*b through the active kernel backend, reusing
// the caller-provided destination (dst must be a.rows × b.cols, and may
// not alias a or b). It returns dst.
func MulInto(a, b, dst *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto destination is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	Active().Gemm(a.rows, b.cols, a.cols, a.data, b.data, dst.data)
	return dst
}

// MulVec returns the matrix-vector product m*x. Hot paths should prefer
// MulVecInto with a pooled destination; MulVec allocates the result.
func (m *Dense) MulVec(x []float64) []float64 {
	//lint:allow poolalloc result escapes to the caller; pooled callers use MulVecInto
	out := make([]float64, m.rows)
	m.MulVecInto(x, out)
	return out
}

// MulVecInto computes dst = m*x through the active kernel backend into
// the caller-provided destination (len m.rows).
func (m *Dense) MulVecInto(x, dst []float64) {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", m.rows, m.cols, len(x)))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVecInto destination length %d, want %d", len(dst), m.rows))
	}
	Active().Gemv(m.rows, m.cols, m.data, x, dst)
}

// Add returns a+b elementwise.
func Add(a, b *Dense) *Dense {
	checkSameDims(a, b, "Add")
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns a-b elementwise.
func Sub(a, b *Dense) *Dense {
	checkSameDims(a, b, "Sub")
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns s*m as a new matrix.
func (m *Dense) Scale(s float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

func checkSameDims(a, b *Dense, op string) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			sb.WriteByte('\n')
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.6g", m.At(i, j))
		}
	}
	return sb.String()
}

// MaxAbsDiff returns the maximum absolute elementwise difference between a
// and b; useful in tests.
func MaxAbsDiff(a, b *Dense) float64 {
	checkSameDims(a, b, "MaxAbsDiff")
	var max float64
	for i := range a.data {
		if d := math.Abs(a.data[i] - b.data[i]); d > max {
			max = d
		}
	}
	return max
}

// ---- vector helpers ----

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// VecClone returns a copy of x.
func VecClone(x []float64) []float64 {
	//lint:allow poolalloc clone by definition allocates its own backing
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// ---- factorizations & solvers ----

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular or not positive definite")

// Cholesky computes the lower-triangular factor L with A = L*Lᵀ for a
// symmetric positive-definite A.
func Cholesky(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		panic("mat: Cholesky of non-square matrix")
	}
	n := a.rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A*x = b given the Cholesky factor L of A.
func SolveCholesky(l *Dense, b []float64) []float64 {
	n := l.rows
	if len(b) != n {
		panic("mat: SolveCholesky dimension mismatch")
	}
	// Forward substitution: L*y = b.
	//lint:allow poolalloc solution escapes to the caller; factor-based solves are off the steady-state path
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ*x = y.
	//lint:allow poolalloc solution escapes to the caller; factor-based solves are off the steady-state path
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A*x = b for symmetric positive-definite A.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, b), nil
}

// QR holds a Householder QR factorization of an m×n matrix with m >= n.
// The lower trapezoid of qr stores the Householder vectors (including the
// head at the diagonal); the strict upper triangle stores R; rdiag stores
// R's diagonal separately.
type QR struct {
	qr    *Dense
	rdiag []float64
	m, n  int
}

// QRFactor computes the QR factorization of a (m >= n required).
func QRFactor(a *Dense) *QR {
	m, n := a.rows, a.cols
	if m < n {
		panic("mat: QRFactor requires rows >= cols")
	}
	qr := a.Clone()
	//lint:allow poolalloc one-time factorization state, owned by the returned QR
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the norm of column k at and below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			rdiag[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply the transformation to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -norm
	}
	return &QR{qr: qr, rdiag: rdiag, m: m, n: n}
}

// Solve solves the least-squares problem min ||A*x - b||₂ using the stored
// factorization. It returns ErrSingular if R has a (near-)zero diagonal.
func (f *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != f.m {
		panic("mat: QR.Solve dimension mismatch")
	}
	y := VecClone(b)
	// Apply the Householder reflections to b, computing Qᵀb.
	for k := 0; k < f.n; k++ {
		if f.rdiag[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < f.m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R*x = y[:n]; R's off-diagonal lives in qr's upper
	// triangle, its diagonal in rdiag.
	//lint:allow poolalloc solution escapes to the caller; QR solves back only the rare singular fallback
	x := make([]float64, f.n)
	for i := f.n - 1; i >= 0; i-- {
		d := f.rdiag[i]
		if math.Abs(d) < 1e-12 {
			return nil, ErrSingular
		}
		s := y[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / d
	}
	return x, nil
}

// LstSq solves min ||A*x - b||₂ via QR.
func LstSq(a *Dense, b []float64) ([]float64, error) {
	return QRFactor(a).Solve(b)
}

// SolveRidge solves the ridge-regularized least squares
// (AᵀA + lambda*I) x = Aᵀ b. lambda must be >= 0; with lambda == 0 it is
// ordinary least squares via the normal equations.
func SolveRidge(a *Dense, b []float64, lambda float64) ([]float64, error) {
	at := a.T()
	ata := Mul(at, a)
	n := ata.rows
	for i := 0; i < n; i++ {
		ata.data[i*n+i] += lambda
	}
	atb := at.MulVec(b)
	x, err := SolveSPD(ata, atb)
	if err != nil {
		// Fall back to QR on the augmented system for near-singular AᵀA.
		return LstSq(a, b)
	}
	return x, nil
}

// SolveWeightedRidge solves the weighted ridge regression
// (Aᵀ W A + lambda*I) x = Aᵀ W b where W = diag(w). Used by LIME and
// KernelSHAP. Weights must be non-negative. It allocates the solution;
// hot paths should call SolveWeightedRidgeInto with a pooled or reused
// destination.
func SolveWeightedRidge(a *Dense, b, w []float64, lambda float64) ([]float64, error) {
	//lint:allow poolalloc result escapes to the caller; pooled callers use SolveWeightedRidgeInto
	dst := make([]float64, a.cols)
	if err := SolveWeightedRidgeInto(a, b, w, lambda, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// solveWS is the pooled normal-equations workspace: the n×n gram matrix
// (factored in place) and the n-vector right-hand side.
type solveWS struct {
	gram []float64
	rhs  []float64
}

var solvePool = sync.Pool{New: func() any { return new(solveWS) }}

// getSolveWS returns a workspace with capacity for an n-column system.
// Contents are undefined: WeightedGram fully overwrites both buffers.
func getSolveWS(n int) *solveWS {
	ws := solvePool.Get().(*solveWS)
	if cap(ws.gram) < n*n {
		ws.gram = make([]float64, n*n)
	}
	ws.gram = ws.gram[:n*n]
	if cap(ws.rhs) < n {
		ws.rhs = make([]float64, n)
	}
	ws.rhs = ws.rhs[:n]
	return ws
}

func putSolveWS(ws *solveWS) { solvePool.Put(ws) }

// SolveWeightedRidgeInto solves the weighted ridge regression directly
// through the normal equations into the caller-provided dst (len
// a.cols): the gram matrix AᵀWA + lambda·I and right-hand side AᵀWb are
// accumulated by the active backend into pooled workspace and the system
// is solved by an in-place Cholesky factorization — zero steady-state
// allocations, which is what empties the ridge-solve alloc hotspot PR 9
// left behind. A (numerically) non-positive-definite system falls back
// to QR on the sqrt(w)-scaled rows, matching the historical SolveRidge
// fallback (that path allocates; it is rare and ErrSingular-driven).
func SolveWeightedRidgeInto(a *Dense, b, w []float64, lambda float64, dst []float64) error {
	if len(w) != a.rows || len(b) != a.rows {
		panic("mat: SolveWeightedRidge dimension mismatch")
	}
	n := a.cols
	if len(dst) != n {
		panic(fmt.Sprintf("mat: SolveWeightedRidgeInto destination length %d, want %d", len(dst), n))
	}
	ws := getSolveWS(n)
	defer putSolveWS(ws)
	bk := Active()
	bk.WeightedGram(a.rows, n, a.data, b, w, lambda, ws.gram, ws.rhs)
	if err := bk.SolveSPDInPlace(n, ws.gram, ws.rhs, dst); err == nil {
		return nil
	}
	x, err := weightedQRFallback(a, b, w)
	if err != nil {
		return err
	}
	copy(dst, x)
	return nil
}

// weightedQRFallback is the rare-path least-squares solve on the
// sqrt(w)-scaled system, reproducing the pre-backend fallback semantics
// (the ridge term is dropped, exactly as SolveRidge's QR fallback did).
func weightedQRFallback(a *Dense, b, w []float64) ([]float64, error) {
	scaled := a.Clone()
	//lint:allow poolalloc rare ErrSingular fallback, not a steady-state path
	sb := make([]float64, len(b))
	for i := 0; i < a.rows; i++ {
		sw := math.Sqrt(w[i])
		row := scaled.Row(i)
		for j := range row {
			row[j] *= sw
		}
		sb[i] = b[i] * sw
	}
	return LstSq(scaled, sb)
}
