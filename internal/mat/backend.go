// Kernel-plane backend abstraction. The explainer hot loops funnel into a
// handful of dense kernels — GEMM/GEMV, masked hybrid-row assembly, and
// the weighted normal-equations solve behind every LIME/KernelSHAP ridge
// regression. Backend packages those kernels behind one interface so an
// alternative implementation (blocked/unrolled today, BLAS or GPU
// offload tomorrow — the XAI-on-RAN direction in PAPERS.md) is a build
// tag or a flag, not a rewrite.
//
// Two backends are always compiled in:
//
//   - "go": the straightforward loops the repo has always run. Its Gemm
//     and Gemv reproduce the historical Mul/MulVec bit-for-bit, so the
//     default path stays bit-identical across the refactor.
//   - "blocked": cache-line-blocked loops with a register-tiled 4×4 GEMM
//     micro-kernel and 4-way-unrolled reductions. Results agree with "go"
//     to floating-point reassociation (the parity suite bounds it), not
//     bit-for-bit.
//
// The build-time default is "go"; building with -tags matblocked flips
// the default to "blocked" (see default_go.go / default_blocked.go).
// Either can be selected at runtime via Use — explaind surfaces that as
// -matbackend and reports the active backend on /readyz.
package mat

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Backend is the pluggable kernel set. All matrices are fully-packed
// row-major float64 slices; implementations may not retain any argument.
type Backend interface {
	// Name identifies the backend in Use/Active and /readyz.
	Name() string
	// Gemm overwrites c (m×n) with the product a (m×k) · b (k×n).
	Gemm(m, n, k int, a, b, c []float64)
	// Gemv overwrites y (m) with a (m×n) · x (n).
	Gemv(m, n int, a, x, y []float64)
	// HybridRow assembles one masked perturbation row: dst = bg, then
	// dst[j] = x[j] for every j in kept. This is the inner row-assembly
	// step of KernelSHAP's generic coalition evaluator.
	HybridRow(dst, bg, x []float64, kept []int)
	// WeightedGram accumulates the ridge normal-equations system for
	// a (rows×n), targets b, non-negative weights w: gram (n×n) gets
	// AᵀWA + lambda·I and rhs (n) gets AᵀWb. Both outputs are fully
	// overwritten.
	WeightedGram(rows, n int, a, b, w []float64, lambda float64, gram, rhs []float64)
	// SolveSPDInPlace solves g·dst = rhs for symmetric positive-definite
	// g (n×n), factoring g in place (its contents are destroyed). rhs is
	// left intact; dst (n) receives the solution. Returns ErrSingular
	// when g is not (numerically) positive definite.
	SolveSPDInPlace(n int, g, rhs, dst []float64) error
}

var (
	backendMu  sync.Mutex
	backends   = map[string]Backend{}
	activeBack atomic.Value // Backend
)

func init() {
	RegisterBackend(goBackend{})
	RegisterBackend(blockedBackend{})
	if err := Use(defaultBackendName); err != nil {
		panic(err)
	}
}

// RegisterBackend adds b to the registry. Registering a name twice
// replaces the earlier backend (tests use this to inject probes).
func RegisterBackend(b Backend) {
	backendMu.Lock()
	defer backendMu.Unlock()
	backends[b.Name()] = b
}

// Use selects the active backend by name. It is meant for startup
// (flag parsing); switching mid-computation is safe but pointless.
func Use(name string) error {
	backendMu.Lock()
	defer backendMu.Unlock()
	b, ok := backends[name]
	if !ok {
		return fmt.Errorf("mat: unknown backend %q (have %v)", name, backendNamesLocked())
	}
	activeBack.Store(&b)
	return nil
}

// Active returns the currently selected backend.
func Active() Backend { return *activeBack.Load().(*Backend) }

// BackendNames lists the registered backends, sorted.
func BackendNames() []string {
	backendMu.Lock()
	defer backendMu.Unlock()
	return backendNamesLocked()
}

func backendNamesLocked() []string {
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HybridRow dispatches to the active backend; see Backend.HybridRow.
func HybridRow(dst, bg, x []float64, kept []int) {
	Active().HybridRow(dst, bg, x, kept)
}

// ---- "go" backend: the historical straightforward loops ----

type goBackend struct{}

func (goBackend) Name() string { return "go" }

// Gemm is the exact loop Mul has always run (i-k-j order, skipping zero
// a-elements), so Mul results remain bit-identical across the backend
// refactor.
func (goBackend) Gemm(m, n, k int, a, b, c []float64) {
	clear(c[:m*n])
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

func (goBackend) Gemv(m, n int, a, x, y []float64) {
	for i := 0; i < m; i++ {
		y[i] = Dot(a[i*n:(i+1)*n], x)
	}
}

func (goBackend) HybridRow(dst, bg, x []float64, kept []int) {
	copy(dst, bg)
	for _, j := range kept {
		dst[j] = x[j]
	}
}

func (goBackend) WeightedGram(rows, n int, a, b, w []float64, lambda float64, gram, rhs []float64) {
	weightedGramUpper(rows, n, a, b, w, gram, rhs, false)
	finishGram(n, lambda, gram)
}

func (goBackend) SolveSPDInPlace(n int, g, rhs, dst []float64) error {
	return solveSPDInPlace(n, g, rhs, dst)
}

// ---- "blocked" backend: cache-blocked, register-tiled, unrolled ----

type blockedBackend struct{}

func (blockedBackend) Name() string { return "blocked" }

// Cache-blocking parameters: a 64×64 float64 tile is 32 KiB — one L1d's
// worth shared between the a-panel and b-panel of a block multiply.
const (
	gemmBlockM = 64
	gemmBlockN = 64
	gemmBlockK = 64
)

// Gemm computes c = a·b with k-outer cache blocking and a 4×4
// register-tiled micro-kernel on the interior; edges fall back to
// scalar loops. Accumulation order differs from the "go" backend, so
// results agree to reassociation error only.
func (blockedBackend) Gemm(m, n, k int, a, b, c []float64) {
	clear(c[:m*n])
	for kk := 0; kk < k; kk += gemmBlockK {
		kmax := min(kk+gemmBlockK, k)
		for ii := 0; ii < m; ii += gemmBlockM {
			imax := min(ii+gemmBlockM, m)
			for jj := 0; jj < n; jj += gemmBlockN {
				jmax := min(jj+gemmBlockN, n)
				gemmBlock(ii, imax, jj, jmax, kk, kmax, n, k, a, b, c)
			}
		}
	}
}

// gemmBlock multiplies one (i,j,k) block, 4×4 register tiles first.
func gemmBlock(ii, imax, jj, jmax, kk, kmax, n, k int, a, b, c []float64) {
	i := ii
	for ; i+4 <= imax; i += 4 {
		j := jj
		for ; j+4 <= jmax; j += 4 {
			micro4x4(i, j, kk, kmax, n, k, a, b, c)
		}
		for ; j < jmax; j++ {
			for r := i; r < i+4; r++ {
				var s float64
				arow := a[r*k:]
				for p := kk; p < kmax; p++ {
					s += arow[p] * b[p*n+j]
				}
				c[r*n+j] += s
			}
		}
	}
	for ; i < imax; i++ {
		arow := a[i*k:]
		crow := c[i*n:]
		for p := kk; p < kmax; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n:]
			for j := jj; j < jmax; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// micro4x4 is the register tile: 16 accumulators live across the k-loop,
// with one a-column load and one b-row load per step.
func micro4x4(i, j, kk, kmax, n, k int, a, b, c []float64) {
	a0 := a[i*k:]
	a1 := a[(i+1)*k:]
	a2 := a[(i+2)*k:]
	a3 := a[(i+3)*k:]
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	for p := kk; p < kmax; p++ {
		bp := b[p*n+j : p*n+j+4 : p*n+j+4]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		av := a0[p]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = a1[p]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = a2[p]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = a3[p]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
	}
	r0 := c[i*n+j : i*n+j+4 : i*n+j+4]
	r0[0] += c00
	r0[1] += c01
	r0[2] += c02
	r0[3] += c03
	r1 := c[(i+1)*n+j : (i+1)*n+j+4 : (i+1)*n+j+4]
	r1[0] += c10
	r1[1] += c11
	r1[2] += c12
	r1[3] += c13
	r2 := c[(i+2)*n+j : (i+2)*n+j+4 : (i+2)*n+j+4]
	r2[0] += c20
	r2[1] += c21
	r2[2] += c22
	r2[3] += c23
	r3 := c[(i+3)*n+j : (i+3)*n+j+4 : (i+3)*n+j+4]
	r3[0] += c30
	r3[1] += c31
	r3[2] += c32
	r3[3] += c33
}

// Gemv runs each row's reduction with four independent accumulators to
// break the add dependency chain.
func (blockedBackend) Gemv(m, n int, a, x, y []float64) {
	for i := 0; i < m; i++ {
		y[i] = dotUnrolled(a[i*n:(i+1)*n], x)
	}
}

func dotUnrolled(a, x []float64) float64 {
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= len(a); j += 4 {
		s0 += a[j] * x[j]
		s1 += a[j+1] * x[j+1]
		s2 += a[j+2] * x[j+2]
		s3 += a[j+3] * x[j+3]
	}
	for ; j < len(a); j++ {
		s0 += a[j] * x[j]
	}
	return (s0 + s1) + (s2 + s3)
}

func (blockedBackend) HybridRow(dst, bg, x []float64, kept []int) {
	copy(dst, bg)
	k := 0
	for ; k+4 <= len(kept); k += 4 {
		j0, j1, j2, j3 := kept[k], kept[k+1], kept[k+2], kept[k+3]
		dst[j0] = x[j0]
		dst[j1] = x[j1]
		dst[j2] = x[j2]
		dst[j3] = x[j3]
	}
	for ; k < len(kept); k++ {
		dst[kept[k]] = x[kept[k]]
	}
}

func (blockedBackend) WeightedGram(rows, n int, a, b, w []float64, lambda float64, gram, rhs []float64) {
	weightedGramUpper(rows, n, a, b, w, gram, rhs, true)
	finishGram(n, lambda, gram)
}

func (blockedBackend) SolveSPDInPlace(n int, g, rhs, dst []float64) error {
	return solveSPDInPlace(n, g, rhs, dst)
}

// ---- shared normal-equations kernels ----

// weightedGramUpper accumulates the upper triangle of AᵀWA into gram and
// AᵀWb into rhs. The unrolled variant splits the rank-1 update's inner
// loop four ways; both variants sum rows in order, so they differ only
// by reassociation within a row.
func weightedGramUpper(rows, n int, a, b, w []float64, gram, rhs []float64, unroll bool) {
	clear(gram[:n*n])
	clear(rhs[:n])
	for i := 0; i < rows; i++ {
		wi := w[i]
		if wi == 0 {
			continue
		}
		row := a[i*n : (i+1)*n]
		wb := wi * b[i]
		for p := 0; p < n; p++ {
			ap := row[p]
			if ap == 0 {
				continue
			}
			wap := wi * ap
			rhs[p] += ap * wb
			g := gram[p*n:]
			if unroll {
				q := p
				for ; q+4 <= n; q += 4 {
					g[q] += wap * row[q]
					g[q+1] += wap * row[q+1]
					g[q+2] += wap * row[q+2]
					g[q+3] += wap * row[q+3]
				}
				for ; q < n; q++ {
					g[q] += wap * row[q]
				}
			} else {
				for q := p; q < n; q++ {
					g[q] += wap * row[q]
				}
			}
		}
	}
}

// finishGram mirrors the upper triangle into the lower and adds the
// ridge term to the diagonal.
func finishGram(n int, lambda float64, gram []float64) {
	for p := 0; p < n; p++ {
		gram[p*n+p] += lambda
		for q := p + 1; q < n; q++ {
			gram[q*n+p] = gram[p*n+q]
		}
	}
}

// solveSPDInPlace factors g = L·Lᵀ in place (L overwrites g's lower
// triangle) and solves by forward/back substitution through dst. No
// allocations: this is the steady-state ridge-solve path, and the
// poolalloc analyzer holds it to zero.
func solveSPDInPlace(n int, g, rhs, dst []float64) error {
	// In-place Cholesky, lower triangle.
	for i := 0; i < n; i++ {
		gi := g[i*n:]
		for j := 0; j <= i; j++ {
			gj := g[j*n:]
			sum := gi[j]
			for p := 0; p < j; p++ {
				sum -= gi[p] * gj[p]
			}
			if i == j {
				if sum <= 0 || sum != sum { // non-positive or NaN pivot
					return ErrSingular
				}
				gi[i] = math.Sqrt(sum)
			} else {
				gi[j] = sum / gj[j]
			}
		}
	}
	// Forward substitution L·y = rhs (y in dst).
	for i := 0; i < n; i++ {
		s := rhs[i]
		gi := g[i*n:]
		for p := 0; p < i; p++ {
			s -= gi[p] * dst[p]
		}
		dst[i] = s / gi[i]
	}
	// Back substitution Lᵀ·x = y, in place over dst.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for p := i + 1; p < n; p++ {
			s -= g[p*n+i] * dst[p]
		}
		dst[i] = s / g[i*n+i]
	}
	return nil
}
