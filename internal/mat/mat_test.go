package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("zero matrix has %v at (%d,%d)", m.At(i, j), i, j)
			}
		}
	}
}

func TestNewDensePanics(t *testing.T) {
	cases := []func(){
		func() { NewDense(0, 3) },
		func() { NewDense(3, -1) },
		func() { NewDenseData(2, 2, []float64{1, 2, 3}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSetAtRowCol(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At = %v want 7.5", got)
	}
	if got := m.Row(1)[2]; got != 7.5 {
		t.Fatalf("Row = %v want 7.5", got)
	}
	if got := m.Col(2)[1]; got != 7.5 {
		t.Fatalf("Col = %v want 7.5", got)
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tt := m.T()
	r, c := tt.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T dims %dx%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewDense(4, 4)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	if d := MaxAbsDiff(Mul(a, Identity(4)), a); d > 1e-15 {
		t.Fatalf("A*I != A, diff %g", d)
	}
	if d := MaxAbsDiff(Mul(Identity(4), a), a); d > 1e-15 {
		t.Fatalf("I*A != A, diff %g", d)
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if d := MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("Mul wrong, diff %g:\n%v", d, got)
	}
}

func TestMulVec(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 0, -1, 2, 3, 4})
	got := a.MulVec([]float64{1, 2, 3})
	if got[0] != -2 || got[1] != 20 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	if got := Add(a, b).At(1, 1); got != 12 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).At(0, 0); got != 4 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2).At(1, 0); got != 6 {
		t.Fatalf("Scale = %v", got)
	}
	// Originals untouched.
	if a.At(0, 0) != 1 || b.At(0, 0) != 5 {
		t.Fatal("operands mutated")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY = %v", y)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		// Build SPD A = BᵀB + n*I.
		b := NewDense(n, n)
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		a := Mul(b.T(), b)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("Cholesky failed: %v", err)
		}
		if d := MaxAbsDiff(Mul(l, l.T()), a); d > 1e-9 {
			t.Fatalf("L*Lᵀ != A, diff %g", d)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrSingular for indefinite matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	a := NewDenseData(2, 2, []float64{4, 1, 1, 3})
	x, err := SolveSPD(a, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual.
	r := a.MulVec(x)
	if !almostEq(r[0], 1, 1e-12) || !almostEq(r[1], 2, 1e-12) {
		t.Fatalf("residual %v", r)
	}
}

func TestQRSolveExact(t *testing.T) {
	// Square well-conditioned system: QR should recover x exactly.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		a := NewDense(n, n)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+3) // diagonal dominance-ish
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := LstSq(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !almostEq(got[i], want[i], 1e-8) {
				t.Fatalf("trial %d: x[%d]=%g want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestQRLeastSquaresNormalEquations(t *testing.T) {
	// Overdetermined: QR solution must satisfy Aᵀ(Ax-b)=0.
	rng := rand.New(rand.NewSource(11))
	a := NewDense(30, 5)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	b := make([]float64, 30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := LstSq(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := a.MulVec(x)
	for i := range res {
		res[i] -= b[i]
	}
	grad := a.T().MulVec(res)
	for i, g := range grad {
		if math.Abs(g) > 1e-9 {
			t.Fatalf("normal equations violated: grad[%d]=%g", i, g)
		}
	}
}

func TestQRSingular(t *testing.T) {
	// Rank-deficient matrix: duplicate column.
	a := NewDenseData(3, 2, []float64{1, 1, 2, 2, 3, 3})
	if _, err := LstSq(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveRidgeShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewDense(40, 4)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64() * 3
	}
	x0, err := SolveRidge(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := SolveRidge(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(x1) >= Norm2(x0) {
		t.Fatalf("ridge did not shrink: ||x0||=%g ||x1||=%g", Norm2(x0), Norm2(x1))
	}
}

func TestSolveWeightedRidgeZeroWeightIgnoresRow(t *testing.T) {
	// Two inconsistent observations of a constant; weights pick one.
	a := NewDenseData(2, 1, []float64{1, 1})
	b := []float64{10, 20}
	x, err := SolveWeightedRidge(a, b, []float64{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 10, 1e-8) {
		t.Fatalf("weighted solve = %v want 10", x)
	}
	x, err = SolveWeightedRidge(a, b, []float64{1, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Weighted mean (10 + 3*20)/4 = 17.5.
	if !almostEq(x[0], 17.5, 1e-8) {
		t.Fatalf("weighted solve = %v want 17.5", x)
	}
}

func TestPropertyTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		m := NewDense(r, c)
		for i := range m.data {
			m.data[i] = rng.NormFloat64()
		}
		return MaxAbsDiff(m.T().T(), m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMulAssociativeWithVec(t *testing.T) {
	// (A*B)x == A*(Bx)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := NewDense(m, k)
		b := NewDense(k, n)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		lhs := Mul(a, b).MulVec(x)
		rhs := a.MulVec(b.MulVec(x))
		for i := range lhs {
			if !almostEq(lhs[i], rhs[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDotSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		return almostEq(Dot(a, b), Dot(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	if got := m.String(); got != "1 2\n3 4" {
		t.Fatalf("String = %q", got)
	}
}

func BenchmarkMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewDense(64, 64)
	c := NewDense(64, 64)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
		c.data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(a, c)
	}
}

func BenchmarkCholesky32(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 32
	base := NewDense(n, n)
	for i := range base.data {
		base.data[i] = rng.NormFloat64()
	}
	a := Mul(base.T(), base)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}
