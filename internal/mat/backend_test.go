package mat

import (
	"math"
	"math/rand"
	"testing"
)

// kernelBackends returns both registered backends; the parity suite runs
// every kernel through each and bounds their disagreement. This suite is
// what the CI matblocked smoke step relies on: it passes identically
// whichever backend the build tag made the default.
func kernelBackends(t *testing.T) (Backend, Backend) {
	t.Helper()
	backendMu.Lock()
	g, okG := backends["go"]
	bl, okB := backends["blocked"]
	backendMu.Unlock()
	if !okG || !okB {
		t.Fatalf("expected go and blocked backends registered, have %v", BackendNames())
	}
	return g, bl
}

func randSlice(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func maxAbsDiffSlice(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestBackendRegistry(t *testing.T) {
	names := BackendNames()
	if len(names) < 2 {
		t.Fatalf("BackendNames = %v, want at least go and blocked", names)
	}
	orig := Active().Name()
	defer func() {
		if err := Use(orig); err != nil {
			t.Fatal(err)
		}
	}()
	if err := Use("blocked"); err != nil {
		t.Fatal(err)
	}
	if got := Active().Name(); got != "blocked" {
		t.Fatalf("Active after Use(blocked) = %q", got)
	}
	if err := Use("no-such-backend"); err == nil {
		t.Fatal("Use of unknown backend succeeded")
	}
}

// TestGemmParity bounds go-vs-blocked GEMM disagreement at reassociation
// scale across shapes, including non-multiple-of-tile edges.
func TestGemmParity(t *testing.T) {
	g, bl := kernelBackends(t)
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{{1, 1, 1}, {3, 5, 4}, {4, 4, 4}, {7, 9, 5}, {65, 66, 67}, {128, 31, 70}}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		a[0] = 0 // exercise the zero-skip branch
		cg := make([]float64, m*n)
		cb := make([]float64, m*n)
		g.Gemm(m, n, k, a, b, cg)
		bl.Gemm(m, n, k, a, b, cb)
		if d := maxAbsDiffSlice(cg, cb); d > 1e-10 {
			t.Errorf("Gemm %dx%dx%d backend divergence %g", m, n, k, d)
		}
	}
}

func TestGemvParity(t *testing.T) {
	g, bl := kernelBackends(t)
	rng := rand.New(rand.NewSource(8))
	for _, s := range [][2]int{{1, 1}, {3, 7}, {16, 16}, {33, 65}} {
		m, n := s[0], s[1]
		a := randSlice(rng, m*n)
		x := randSlice(rng, n)
		yg := make([]float64, m)
		yb := make([]float64, m)
		g.Gemv(m, n, a, x, yg)
		bl.Gemv(m, n, a, x, yb)
		if d := maxAbsDiffSlice(yg, yb); d > 1e-10 {
			t.Errorf("Gemv %dx%d backend divergence %g", m, n, d)
		}
	}
}

func TestHybridRowParity(t *testing.T) {
	g, bl := kernelBackends(t)
	rng := rand.New(rand.NewSource(9))
	for _, d := range []int{1, 4, 9, 17} {
		bg := randSlice(rng, d)
		x := randSlice(rng, d)
		var kept []int
		for j := 0; j < d; j++ {
			if rng.Intn(2) == 0 {
				kept = append(kept, j)
			}
		}
		rg := make([]float64, d)
		rb := make([]float64, d)
		g.HybridRow(rg, bg, x, kept)
		bl.HybridRow(rb, bg, x, kept)
		for j := range rg {
			if rg[j] != rb[j] {
				t.Fatalf("d=%d HybridRow mismatch at %d", d, j)
			}
		}
	}
}

// TestWeightedGramParity checks both backends assemble the same normal
// equations, and that they match the reference AᵀWA + λI computed naively.
func TestWeightedGramParity(t *testing.T) {
	g, bl := kernelBackends(t)
	rng := rand.New(rand.NewSource(10))
	rows, n := 40, 9
	lambda := 0.01
	a := randSlice(rng, rows*n)
	b := randSlice(rng, rows)
	w := make([]float64, rows)
	for i := range w {
		w[i] = rng.Float64()
	}
	w[3] = 0 // exercise the zero-weight skip

	gramG := make([]float64, n*n)
	rhsG := make([]float64, n)
	gramB := make([]float64, n*n)
	rhsB := make([]float64, n)
	g.WeightedGram(rows, n, a, b, w, lambda, gramG, rhsG)
	bl.WeightedGram(rows, n, a, b, w, lambda, gramB, rhsB)
	if d := maxAbsDiffSlice(gramG, gramB); d > 1e-10 {
		t.Errorf("gram backend divergence %g", d)
	}
	if d := maxAbsDiffSlice(rhsG, rhsB); d > 1e-10 {
		t.Errorf("rhs backend divergence %g", d)
	}

	// Naive reference.
	ref := make([]float64, n*n)
	refRHS := make([]float64, n)
	for i := 0; i < rows; i++ {
		for p := 0; p < n; p++ {
			refRHS[p] += w[i] * a[i*n+p] * b[i]
			for q := 0; q < n; q++ {
				ref[p*n+q] += w[i] * a[i*n+p] * a[i*n+q]
			}
		}
	}
	for p := 0; p < n; p++ {
		ref[p*n+p] += lambda
	}
	if d := maxAbsDiffSlice(gramG, ref); d > 1e-9 {
		t.Errorf("gram vs naive reference diff %g", d)
	}
	if d := maxAbsDiffSlice(rhsG, refRHS); d > 1e-9 {
		t.Errorf("rhs vs naive reference diff %g", d)
	}
}

// TestMulIntoMatchesMul pins that Mul (the default go backend) and
// MulInto produce identical bytes, and that MulInto reuses its
// destination across backends.
func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewDenseData(5, 7, randSlice(rng, 35))
	b := NewDenseData(7, 3, randSlice(rng, 21))
	want := Mul(a, b)
	dst := NewDense(5, 3)
	got := MulInto(a, b, dst)
	if got != dst {
		t.Fatal("MulInto did not return its destination")
	}
	if d := MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("MulInto differs from Mul by %g", d)
	}
	// Dirty destination must be fully overwritten.
	for i := range dst.data {
		dst.data[i] = math.NaN()
	}
	MulInto(a, b, dst)
	if d := MaxAbsDiff(want, dst); d != 0 {
		t.Fatalf("MulInto with dirty destination differs by %g", d)
	}
}

func TestMulVecInto(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewDenseData(6, 4, randSlice(rng, 24))
	x := randSlice(rng, 4)
	want := m.MulVec(x)
	dst := make([]float64, 6)
	for i := range dst {
		dst[i] = math.NaN()
	}
	m.MulVecInto(x, dst)
	if d := maxAbsDiffSlice(want, dst); d != 0 {
		t.Fatalf("MulVecInto differs from MulVec by %g", d)
	}
}

// TestSolveWeightedRidgeInto checks the normal-equations fast path
// against the well-understood QR route on a well-conditioned system, for
// both backends.
func TestSolveWeightedRidgeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows, n := 60, 8
	a := NewDenseData(rows, n, randSlice(rng, rows*n))
	xTrue := randSlice(rng, n)
	b := a.MulVec(xTrue)
	w := make([]float64, rows)
	for i := range w {
		w[i] = 0.5 + rng.Float64()
	}
	orig := Active().Name()
	defer func() { _ = Use(orig) }()
	for _, name := range []string{"go", "blocked"} {
		if err := Use(name); err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, n)
		if err := SolveWeightedRidgeInto(a, b, w, 1e-9, dst); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := maxAbsDiffSlice(dst, xTrue); d > 1e-6 {
			t.Errorf("%s: solution error %g", name, d)
		}
		// And the allocating wrapper agrees bit-for-bit.
		got, err := SolveWeightedRidge(a, b, w, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != dst[i] {
				t.Fatalf("%s: wrapper diverges from Into at %d", name, i)
			}
		}
	}
}

// TestSolveWeightedRidgeSingularFallback drives the rank-deficient path:
// a duplicated column makes AᵀWA singular, and the QR fallback must still
// return a least-squares solution (matching historical semantics).
func TestSolveWeightedRidgeSingularFallback(t *testing.T) {
	rows, n := 20, 3
	rng := rand.New(rand.NewSource(14))
	data := make([]float64, rows*n)
	for i := 0; i < rows; i++ {
		v := rng.NormFloat64()
		data[i*n] = v
		data[i*n+1] = v // duplicate column: singular gram
		data[i*n+2] = rng.NormFloat64()
	}
	a := NewDenseData(rows, n, data)
	b := randSlice(rng, rows)
	w := make([]float64, rows)
	for i := range w {
		w[i] = 1
	}
	dst := make([]float64, n)
	err := SolveWeightedRidgeInto(a, b, w, 0, dst)
	// QR also rejects exactly-singular systems; the contract is just that
	// the error (if any) is ErrSingular, never a panic or garbage result.
	if err != nil && err != ErrSingular {
		t.Fatalf("unexpected error %v", err)
	}
}

// TestSolveWeightedRidgeIntoZeroAlloc is the tentpole's invariant: the
// steady-state ridge solve performs zero heap allocations.
func TestSolveWeightedRidgeIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	rows, n := 120, 10
	a := NewDenseData(rows, n, randSlice(rng, rows*n))
	b := randSlice(rng, rows)
	w := make([]float64, rows)
	for i := range w {
		w[i] = 0.5 + rng.Float64()
	}
	dst := make([]float64, n)
	// Warm the pool once.
	if err := SolveWeightedRidgeInto(a, b, w, 1e-6, dst); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := SolveWeightedRidgeInto(a, b, w, 1e-6, dst); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("SolveWeightedRidgeInto allocates %.1f objects/op, want 0", avg)
	}
}

func BenchmarkGemmGo(b *testing.B)      { benchGemm(b, "go") }
func BenchmarkGemmBlocked(b *testing.B) { benchGemm(b, "blocked") }

func benchGemm(b *testing.B, name string) {
	var bk Backend
	backendMu.Lock()
	bk = backends[name]
	backendMu.Unlock()
	rng := rand.New(rand.NewSource(1))
	const m, n, k = 128, 128, 128
	av := randSlice(rng, m*k)
	bv := randSlice(rng, k*n)
	cv := make([]float64, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bk.Gemm(m, n, k, av, bv, cv)
	}
}

func BenchmarkSolveWeightedRidgeInto(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rows, n := 1024, 16
	a := NewDenseData(rows, n, randSlice(rng, rows*n))
	bb := randSlice(rng, rows)
	w := make([]float64, rows)
	for i := range w {
		w[i] = 0.5 + rng.Float64()
	}
	dst := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SolveWeightedRidgeInto(a, bb, w, 1e-9, dst); err != nil {
			b.Fatal(err)
		}
	}
}
