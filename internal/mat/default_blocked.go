//go:build matblocked

package mat

// defaultBackendName under -tags matblocked: the blocked/unrolled
// kernels become the build-time default. Runtime selection via Use
// (explaind -matbackend) still works either way.
const defaultBackendName = "blocked"
