package registry

import (
	"errors"
	"fmt"
	"time"

	"nfvxai/internal/core"
)

// SyncReport summarizes one SyncManifest reconcile round against the
// shared store.
type SyncReport struct {
	// Adopted are model names newly loaded from the shared manifest
	// (trained or imported on another node).
	Adopted []string
	// Swapped are local models hot-swapped to a newer remote artifact
	// (another node retrained them, e.g. on drift).
	Swapped []string
	// Skipped counts records already current locally, or locally
	// in-flight (a training build wins over the shared record until it
	// resolves).
	Skipped int
	// Scenarios counts newly registered scenario specs.
	Scenarios int
	// Default is the default name adopted from the manifest ("" when the
	// local default was already set or the manifest names an unknown
	// model).
	Default string
	// Errors lists records that failed to adopt (missing or corrupt
	// artifacts); the rest of the round proceeds.
	Errors []RestoreError
}

// adoptAction is the per-record reconcile decision.
type adoptAction int

const (
	adoptSkip adoptAction = iota // local state is current or in-flight
	adoptNew                     // no usable local entry: restore from artifact
	adoptSwap                    // remote record is newer: hot-swap pipeline
)

// SyncManifest reconciles the local registry against the shared store's
// manifest — the pull half of cluster replication. For each record it
// adopts models this node has never seen, hot-swaps models another node
// retrained (strictly newer ReadyAt), and leaves local in-flight or
// up-to-date state alone. It never writes to the store: adoption is
// read-only replication, so two nodes syncing concurrently cannot fight
// over the manifest. Scenario specs are registered first (model specs
// reference them); the manifest default is adopted only when this node
// has none yet.
func (r *Registry) SyncManifest(now time.Time) (SyncReport, error) {
	var rep SyncReport
	st := r.StoreBackend()
	if st == nil {
		return rep, ErrNoStore
	}
	m, ok, err := st.GetManifest()
	if err != nil {
		return rep, err
	}
	if !ok {
		return rep, nil // fresh store: nothing to adopt
	}
	if m.Version != ManifestVersion {
		return rep, fmt.Errorf("%w: %d (want %d)", ErrManifestVersion, m.Version, ManifestVersion)
	}
	startDefault := r.DefaultName()
	for _, sp := range m.Scenarios {
		if _, err := r.Scenarios.Register(sp); err != nil {
			if errors.Is(err, core.ErrScenarioExists) {
				continue
			}
			rep.Errors = append(rep.Errors, RestoreError{Name: "scenario/" + sp.Name, Err: err})
			continue
		}
		rep.Scenarios++
	}
	for _, rec := range m.Models {
		action, err := r.adoptRecord(st, rec)
		switch {
		case err != nil:
			rep.Errors = append(rep.Errors, RestoreError{Name: rec.Spec.Name, Err: err})
		case action == adoptNew:
			rep.Adopted = append(rep.Adopted, rec.Spec.Name)
		case action == adoptSwap:
			rep.Swapped = append(rep.Swapped, rec.Spec.Name)
		default:
			rep.Skipped++
		}
	}
	// Adopt the fleet default only when this node had none at round
	// start: an operator's explicit local SetDefault is not overridden by
	// the shared manifest. (adoptRecord may already have defaulted to the
	// first adopted model; the manifest's choice wins over that.)
	if startDefault == "" {
		r.mu.Lock()
		if m.Default != "" {
			if _, ok := r.models[m.Default]; ok {
				r.defaultKey = m.Default
			}
		}
		rep.Default = r.defaultKey
		r.mu.Unlock()
	}
	return rep, nil
}

// decideAdoptLocked classifies one shared-manifest record against local
// state. Caller holds r.mu (read or write).
func (r *Registry) decideAdoptLocked(rec ModelRecord) adoptAction {
	name := rec.Spec.Name
	e, ok := r.models[name]
	if !ok {
		return adoptNew
	}
	switch e.status {
	case StatusTraining:
		// A local build is in flight; when it finishes it persists and
		// the manifests converge. Adopting under it would race the swap.
		return adoptSkip
	case StatusFailed:
		// A good remote artifact beats a local failure.
		return adoptNew
	default: // StatusReady
		if r.digests[name] == rec.Digest {
			return adoptSkip // already serving these exact bytes
		}
		if rec.ReadyAt.After(e.readyAt) {
			return adoptSwap // remote retrain is strictly newer
		}
		return adoptSkip // local is as new or newer; our persist wins
	}
}

// adoptRecord applies one record: decide under the read lock, fetch and
// decode the artifact outside any lock (store reads are slow), then
// re-check and install under the write lock — the decision can change
// while the artifact is in flight (a local build finishing, another
// sync racing).
func (r *Registry) adoptRecord(st Store, rec ModelRecord) (adoptAction, error) {
	name := rec.Spec.Name
	r.mu.RLock()
	action := r.decideAdoptLocked(rec)
	r.mu.RUnlock()
	if action == adoptSkip {
		return adoptSkip, nil
	}

	data, err := st.GetArtifact(rec.Digest)
	if err != nil {
		return action, err
	}
	sp, p, err := DecodeArtifact(data)
	if err != nil {
		return action, err
	}
	if sp.Name != name {
		return action, fmt.Errorf("%w: artifact spec name %q != manifest record %q", ErrCorruptArtifact, sp.Name, name)
	}
	if err := ValidateName(sp.Name); err != nil {
		return action, fmt.Errorf("%w: %w", ErrCorruptArtifact, err)
	}

	r.mu.Lock()
	action = r.decideAdoptLocked(rec)
	if action == adoptSkip {
		r.mu.Unlock()
		return adoptSkip, nil
	}
	// An adoptSwap replaces a ready pipeline whose artifact digest is now
	// unreachable through this registry; capture it so its result-cache
	// entries can be released once the lock is down.
	var old *core.Pipeline
	if prev, ok := r.models[name]; ok {
		old = prev.pipeline
	}
	// Install the remote state verbatim — spec, pipeline, lifecycle
	// timestamps and retrain count mirror the owning node, so every
	// replica reports the same /v1/models metadata. No store write
	// happens here or after: the artifact and record came FROM the store.
	r.attachCacheLocked(p)
	r.models[name] = &entry{
		spec:      sp,
		status:    StatusReady,
		createdAt: rec.CreatedAt,
		readyAt:   rec.ReadyAt,
		retrains:  rec.Retrains,
		pipeline:  p,
	}
	if r.digests == nil {
		r.digests = map[string]string{}
	}
	r.digests[name] = rec.Digest
	delete(r.orphans, name)
	if r.defaultKey == "" {
		r.defaultKey = name
	}
	c := r.xcache
	r.mu.Unlock()
	r.dropCacheEntries(old, c)
	return action, nil
}

// ArtifactDigest returns the persisted artifact digest for a model name
// ("" when the model was never persisted or adopted).
func (r *Registry) ArtifactDigest(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.digests[name]
}
