package registry

import (
	"errors"
	"testing"
	"time"
)

// chaosSequence runs a fixed operation sequence and returns which ops
// failed by injection.
func chaosSequence(t *testing.T, cs *ChaosStore, n int) []bool {
	t.Helper()
	outcomes := make([]bool, n)
	for i := range outcomes {
		_, err := cs.PutArtifact([]byte{byte(i)})
		outcomes[i] = errors.Is(err, ErrInjected)
	}
	return outcomes
}

func TestChaosStoreDeterministic(t *testing.T) {
	fs1, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChaosConfig{ErrRate: 0.3, Seed: 42}
	a := chaosSequence(t, NewChaosStore(fs1, cfg), 200)
	b := chaosSequence(t, NewChaosStore(fs2, cfg), 200)
	var fails int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: injection diverged between identical seeds", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("injected %d/%d failures at rate 0.3; want some of each", fails, len(a))
	}
}

func TestChaosStoreTornWrites(t *testing.T) {
	fs, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cs := NewChaosStore(fs, ChaosConfig{TornRate: 1, Seed: 7})
	data := []byte("will-be-lost")
	dig, err := cs.PutArtifact(data)
	if err != nil {
		t.Fatalf("torn write must report success: %v", err)
	}
	if dig != Digest(data) {
		t.Fatalf("torn write digest = %s, want the content digest", dig)
	}
	// The write was lost: reading it back through the bare store misses.
	if _, err := fs.GetArtifact(dig); !errors.Is(err, ErrArtifactNotFound) {
		t.Fatalf("after torn write, GetArtifact = %v, want ErrArtifactNotFound", err)
	}
	if cs.Torn() != 1 {
		t.Fatalf("Torn() = %d, want 1", cs.Torn())
	}
	if err := cs.PutManifest(Manifest{Version: ManifestVersion}); err != nil {
		t.Fatalf("torn manifest write must report success: %v", err)
	}
	if _, ok, err := fs.GetManifest(); err != nil || ok {
		t.Fatalf("torn manifest must not persist: ok=%v err=%v", ok, err)
	}
}

func TestRetryStoreHealsChaos(t *testing.T) {
	// The full resilience stack: FSStore ← chaos (40% errors) ← retry.
	// With 4 attempts per op the per-op failure probability is 0.4^4 ≈
	// 2.6%, so the overwhelming majority of operations must succeed; the
	// rare exhausted operation must still surface a typed transient error.
	fs, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cs := NewChaosStore(fs, ChaosConfig{ErrRate: 0.4, Seed: 11})
	rs := NewRetryStore(cs, RetryConfig{Seed: 11, BreakerThreshold: 100, Sleep: func(time.Duration) {}})
	okOps := 0
	for i := 0; i < 50; i++ {
		data := []byte{byte(i), byte(i >> 8)}
		dig, err := rs.PutArtifact(data)
		if err != nil {
			if !Transient(err) {
				t.Fatalf("put %d: exhausted retries must stay transient, got %v", i, err)
			}
			continue
		}
		got, err := rs.GetArtifact(dig)
		if err != nil {
			if !Transient(err) {
				t.Fatalf("get %d: %v", i, err)
			}
			continue
		}
		if string(got) != string(data) {
			t.Fatalf("get %d: %q, want %q", i, got, data)
		}
		okOps++
	}
	if okOps < 40 {
		t.Fatalf("only %d/50 round trips survived retries; the stack is not absorbing 40%% chaos", okOps)
	}
	if cs.Injected() == 0 {
		t.Fatal("chaos injected nothing at 40%; the test exercised no faults")
	}
	if h := rs.StoreHealth(); h.Retries == 0 {
		t.Fatalf("health = %+v; want recorded retries", h)
	}
}
