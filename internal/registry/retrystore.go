// Store fault tolerance: RetryStore decorates any Store with jittered
// exponential-backoff retries for transient failures and a circuit
// breaker that fails fast while the backend is down, half-opening with a
// single probe after a cooldown. Wrapped around FSStore it lets manifest
// persistence, artifact GC and warm starts ride out transient I/O
// failures (full disk, flaky NFS, chaos injection) — persistence errors
// degrade health reporting, they never panic or wedge the registry.
package registry

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrStoreUnavailable is returned (wrapping the last cause) when the
// circuit breaker is open: the backend failed repeatedly and calls fail
// fast until the cooldown elapses and a probe succeeds.
var ErrStoreUnavailable = errors.New("registry: store unavailable (circuit open)")

// Store health states reported by RetryStore.StoreHealth.
const (
	StoreStateOK       = "ok"
	StoreStateDegraded = "degraded"  // recent failures, still closed
	StoreStateOpen     = "open"      // breaker tripped, failing fast
	StoreStateHalfOpen = "half-open" // cooldown elapsed, probing
)

// StoreHealth is a point-in-time snapshot of a RetryStore's condition,
// surfaced through /healthz and /readyz.
type StoreHealth struct {
	State string `json:"state"`
	// ConsecutiveFailures counts back-to-back failed operations (retries
	// exhausted); the breaker opens at RetryConfig.BreakerThreshold.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// Retries counts individual retried attempts; Trips counts breaker
	// openings since start.
	Retries uint64 `json:"retries,omitempty"`
	Trips   uint64 `json:"trips,omitempty"`
	// LastError and LastFailure describe the most recent failure.
	LastError   string    `json:"last_error,omitempty"`
	LastFailure time.Time `json:"last_failure,omitempty"`
}

// HealthReporter is implemented by instrumented stores (RetryStore);
// Registry.StoreHealth discovers it to surface store health over HTTP.
type HealthReporter interface {
	StoreHealth() StoreHealth
}

// RetryConfig tunes a RetryStore. Zero values take the defaults.
type RetryConfig struct {
	// MaxAttempts is the total tries per operation (first + retries).
	MaxAttempts int // default 4
	// BaseDelay is the first backoff; each retry doubles it up to
	// MaxDelay, with ±50% jitter to decorrelate concurrent retriers.
	BaseDelay time.Duration // default 10ms
	MaxDelay  time.Duration // default 500ms
	// BreakerThreshold consecutive exhausted operations trip the breaker
	// open; BreakerCooldown later one probe operation half-opens it.
	BreakerThreshold int           // default 5
	BreakerCooldown  time.Duration // default 5s
	// Seed drives the jitter (deterministic tests); 0 means 1.
	Seed int64
	// Sleep replaces time.Sleep in tests; nil means real sleeping.
	Sleep func(time.Duration)
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 10 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Transient reports whether a store error is worth retrying. Typed
// registry errors are permanent: a missing or corrupt artifact, a version
// mismatch, or an already-open breaker will not heal by retrying —
// everything else (I/O errors, chaos injection) is assumed transient.
func Transient(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, ErrArtifactNotFound),
		errors.Is(err, ErrCorruptArtifact),
		errors.Is(err, ErrManifestVersion),
		errors.Is(err, ErrArtifactVersion),
		errors.Is(err, ErrNoStore),
		errors.Is(err, ErrStoreUnavailable):
		return false
	}
	return true
}

// RetryStore decorates a Store with retries and a circuit breaker. All
// methods are safe for concurrent use; the internal mutex is never held
// across backend I/O or sleeps.
type RetryStore struct {
	inner Store
	cfg   RetryConfig

	mu        sync.Mutex
	rng       *rand.Rand
	consec    int       // consecutive exhausted operations
	openUntil time.Time // breaker open until (zero = closed)
	probing   bool      // one half-open probe in flight
	retries   uint64
	trips     uint64
	lastErr   error
	lastFail  time.Time
}

// NewRetryStore wraps inner with retry/backoff and a circuit breaker.
func NewRetryStore(inner Store, cfg RetryConfig) *RetryStore {
	cfg = cfg.withDefaults()
	return &RetryStore{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Inner returns the wrapped store (chaos tests reach through).
func (r *RetryStore) Inner() Store { return r.inner }

// admit decides whether an operation may run: closed breaker → yes;
// open within cooldown → fail fast; cooldown elapsed → exactly one
// caller becomes the half-open probe, the rest keep failing fast.
func (r *RetryStore) admit() (probe bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.openUntil.IsZero() {
		return false, nil
	}
	if time.Now().Before(r.openUntil) || r.probing {
		last := r.lastErr
		if last == nil {
			return false, ErrStoreUnavailable
		}
		return false, errors.Join(ErrStoreUnavailable, last)
	}
	r.probing = true
	return true, nil
}

// do runs one store operation through the retry loop and breaker.
func (r *RetryStore) do(fn func() error) error {
	probe, err := r.admit()
	if err != nil {
		return err
	}
	attempts := r.cfg.MaxAttempts
	if probe {
		attempts = 1 // a half-open probe gets one shot, no backoff
	}
	var last error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			r.backoff(i)
		}
		last = fn()
		if last == nil || !Transient(last) {
			// Success — or a permanent error, which still proves the
			// backend is reachable and answering.
			r.recordOK(probe)
			return last
		}
	}
	r.recordFailure(probe, last)
	return last
}

// backoff sleeps the jittered exponential delay for retry i (1-based).
func (r *RetryStore) backoff(i int) {
	d := r.cfg.BaseDelay << uint(i-1)
	if d > r.cfg.MaxDelay {
		d = r.cfg.MaxDelay
	}
	r.mu.Lock()
	r.retries++
	// ±50% jitter, drawn under the lock from the seeded stream.
	jittered := d/2 + time.Duration(r.rng.Int63n(int64(d)+1))
	r.mu.Unlock()
	r.cfg.Sleep(jittered)
}

func (r *RetryStore) recordOK(probe bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consec = 0
	r.openUntil = time.Time{}
	if probe {
		r.probing = false
	}
}

func (r *RetryStore) recordFailure(probe bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consec++
	r.lastErr = err
	r.lastFail = time.Now()
	if probe {
		// Failed probe: reopen for another cooldown.
		r.probing = false
		r.openUntil = time.Now().Add(r.cfg.BreakerCooldown)
		return
	}
	if r.consec >= r.cfg.BreakerThreshold && r.openUntil.IsZero() {
		r.trips++
		r.openUntil = time.Now().Add(r.cfg.BreakerCooldown)
	}
}

// StoreHealth implements HealthReporter.
func (r *RetryStore) StoreHealth() StoreHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := StoreHealth{
		State:               StoreStateOK,
		ConsecutiveFailures: r.consec,
		Retries:             r.retries,
		Trips:               r.trips,
		LastFailure:         r.lastFail,
	}
	if r.lastErr != nil {
		h.LastError = r.lastErr.Error()
	}
	switch {
	case r.probing:
		h.State = StoreStateHalfOpen
	case !r.openUntil.IsZero() && time.Now().Before(r.openUntil):
		h.State = StoreStateOpen
	case !r.openUntil.IsZero():
		h.State = StoreStateHalfOpen // cooldown elapsed, next call probes
	case r.consec > 0:
		h.State = StoreStateDegraded
	}
	return h
}

// ─── Store interface, each operation through the retry loop ─────────────

func (r *RetryStore) PutArtifact(data []byte) (string, error) {
	var digest string
	err := r.do(func() error {
		var e error
		digest, e = r.inner.PutArtifact(data)
		return e
	})
	return digest, err
}

func (r *RetryStore) GetArtifact(digest string) ([]byte, error) {
	var data []byte
	err := r.do(func() error {
		var e error
		data, e = r.inner.GetArtifact(digest)
		return e
	})
	return data, err
}

func (r *RetryStore) DeleteArtifact(digest string) error {
	return r.do(func() error { return r.inner.DeleteArtifact(digest) })
}

func (r *RetryStore) PutManifest(m Manifest) error {
	return r.do(func() error { return r.inner.PutManifest(m) })
}

func (r *RetryStore) GetManifest() (Manifest, bool, error) {
	var (
		m  Manifest
		ok bool
	)
	err := r.do(func() error {
		var e error
		m, ok, e = r.inner.GetManifest()
		return e
	})
	return m, ok, err
}

func (r *RetryStore) PutExperiment(id string, data []byte) error {
	return r.do(func() error { return r.inner.PutExperiment(id, data) })
}

func (r *RetryStore) GetExperiment(id string) ([]byte, error) {
	var data []byte
	err := r.do(func() error {
		var e error
		data, e = r.inner.GetExperiment(id)
		return e
	})
	return data, err
}

func (r *RetryStore) ListExperiments() ([]string, error) {
	var ids []string
	err := r.do(func() error {
		var e error
		ids, e = r.inner.ListExperiments()
		return e
	})
	return ids, err
}

// StoreHealth reports the attached store's health when it is
// instrumented; ok is false for bare or missing stores.
func (r *Registry) StoreHealth() (StoreHealth, bool) {
	if hr, ok := r.StoreBackend().(HealthReporter); ok {
		return hr.StoreHealth(), true
	}
	return StoreHealth{}, false
}
