package registry

import (
	"errors"
	"testing"
	"time"
)

// stubStore fails the first `failures` operations with failErr, then
// delegates to a real in-memory behavior (PutArtifact only needs the
// digest; the rest return zero values).
type stubStore struct {
	failures int
	failErr  error
	calls    int
}

func (s *stubStore) op() error {
	s.calls++
	if s.calls <= s.failures {
		return s.failErr
	}
	return nil
}

func (s *stubStore) PutArtifact(data []byte) (string, error) {
	if err := s.op(); err != nil {
		return "", err
	}
	return Digest(data), nil
}
func (s *stubStore) GetArtifact(digest string) ([]byte, error) { return nil, s.op() }
func (s *stubStore) DeleteArtifact(digest string) error        { return s.op() }
func (s *stubStore) PutManifest(m Manifest) error              { return s.op() }
func (s *stubStore) GetManifest() (Manifest, bool, error)      { return Manifest{}, false, s.op() }
func (s *stubStore) PutExperiment(string, []byte) error        { return s.op() }
func (s *stubStore) GetExperiment(string) ([]byte, error)      { return nil, s.op() }
func (s *stubStore) ListExperiments() ([]string, error)        { return nil, s.op() }

var errFlaky = errors.New("flaky I/O")

// fastRetry returns a config with no real sleeping and tiny cooldown.
func fastRetry(sleeps *[]time.Duration) RetryConfig {
	return RetryConfig{
		BreakerCooldown: time.Nanosecond,
		Sleep: func(d time.Duration) {
			if sleeps != nil {
				*sleeps = append(*sleeps, d)
			}
		},
	}
}

func TestTransientClassification(t *testing.T) {
	permanent := []error{
		nil, ErrArtifactNotFound, ErrCorruptArtifact,
		ErrManifestVersion, ErrArtifactVersion, ErrNoStore, ErrStoreUnavailable,
	}
	for _, err := range permanent {
		if Transient(err) {
			t.Errorf("Transient(%v) = true, want false", err)
		}
	}
	if !Transient(errFlaky) {
		t.Errorf("Transient(%v) = false, want true", errFlaky)
	}
	if !Transient(ErrInjected) {
		t.Error("Transient(ErrInjected) = false, want true: chaos faults must be retryable")
	}
}

func TestRetryStoreRetriesTransient(t *testing.T) {
	var sleeps []time.Duration
	inner := &stubStore{failures: 2, failErr: errFlaky}
	rs := NewRetryStore(inner, fastRetry(&sleeps))
	if err := rs.PutManifest(Manifest{Version: ManifestVersion}); err != nil {
		t.Fatalf("PutManifest after 2 transient failures: %v", err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner calls = %d, want 3 (2 failures + success)", inner.calls)
	}
	if len(sleeps) != 2 {
		t.Fatalf("backoff sleeps = %d, want 2", len(sleeps))
	}
	// Jittered exponential backoff: each delay within [base/2, 2*base<<i].
	base := 10 * time.Millisecond
	for i, d := range sleeps {
		lo, hi := base/2, 3*base
		if i == 1 {
			lo, hi = base, 6*base
		}
		if d < lo || d > hi {
			t.Errorf("sleep %d = %v, want in [%v, %v]", i, d, lo, hi)
		}
	}
	if h := rs.StoreHealth(); h.State != StoreStateOK || h.Retries != 2 {
		t.Fatalf("health after recovery = %+v, want ok with 2 retries", h)
	}
}

func TestRetryStorePermanentNotRetried(t *testing.T) {
	inner := &stubStore{failures: 10, failErr: ErrArtifactNotFound}
	rs := NewRetryStore(inner, fastRetry(nil))
	if _, err := rs.GetArtifact(Digest([]byte("x"))); !errors.Is(err, ErrArtifactNotFound) {
		t.Fatalf("err = %v, want ErrArtifactNotFound", err)
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1 (permanent errors are not retried)", inner.calls)
	}
	// A permanent error proves the backend answers: health stays ok.
	if h := rs.StoreHealth(); h.State != StoreStateOK {
		t.Fatalf("health = %+v, want ok", h)
	}
}

func TestRetryStoreBreakerTripAndRecover(t *testing.T) {
	cfg := fastRetry(nil)
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour // first: prove fail-fast while open
	inner := &stubStore{failures: 1 << 30, failErr: errFlaky}
	rs := NewRetryStore(inner, cfg)

	for i := 0; i < 2; i++ {
		if err := rs.PutManifest(Manifest{}); !errors.Is(err, errFlaky) {
			t.Fatalf("op %d: err = %v, want flaky", i, err)
		}
	}
	h := rs.StoreHealth()
	if h.State != StoreStateOpen || h.Trips != 1 || h.ConsecutiveFailures != 2 {
		t.Fatalf("health after threshold = %+v, want open/1 trip/2 consec", h)
	}
	calls := inner.calls
	err := rs.PutManifest(Manifest{})
	if !errors.Is(err, ErrStoreUnavailable) || !errors.Is(err, errFlaky) {
		t.Fatalf("open-breaker err = %v, want ErrStoreUnavailable wrapping last cause", err)
	}
	if inner.calls != calls {
		t.Fatal("open breaker must fail fast without touching the backend")
	}

	// Cooldown elapsed → exactly one probe; it heals the backend.
	rs.mu.Lock()
	rs.openUntil = time.Now().Add(-time.Millisecond)
	rs.mu.Unlock()
	inner.failures = 0 // backend healed
	if err := rs.PutManifest(Manifest{}); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if h := rs.StoreHealth(); h.State != StoreStateOK || h.ConsecutiveFailures != 0 {
		t.Fatalf("health after successful probe = %+v, want ok", h)
	}
	if err := rs.PutManifest(Manifest{}); err != nil {
		t.Fatalf("post-recovery op: %v", err)
	}
}

func TestRetryStoreFailedProbeReopens(t *testing.T) {
	cfg := fastRetry(nil)
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = time.Hour
	inner := &stubStore{failures: 1 << 30, failErr: errFlaky}
	rs := NewRetryStore(inner, cfg)
	if err := rs.PutManifest(Manifest{}); !errors.Is(err, errFlaky) {
		t.Fatalf("trip op: %v", err)
	}
	rs.mu.Lock()
	rs.openUntil = time.Now().Add(-time.Millisecond)
	rs.mu.Unlock()
	calls := inner.calls
	if err := rs.PutManifest(Manifest{}); !errors.Is(err, errFlaky) {
		t.Fatalf("probe err = %v, want flaky", err)
	}
	if inner.calls != calls+1 {
		t.Fatalf("probe calls = %d, want exactly one attempt (no backoff loop)", inner.calls-calls)
	}
	if h := rs.StoreHealth(); h.State != StoreStateOpen {
		t.Fatalf("health after failed probe = %+v, want open again", h)
	}
}

func TestRetryStoreOverFSStore(t *testing.T) {
	fs, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rs := NewRetryStore(fs, fastRetry(nil))
	data := []byte("artifact-bytes")
	dig, err := rs.PutArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rs.GetArtifact(dig)
	if err != nil || string(got) != string(data) {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	if _, err := rs.GetArtifact(Digest([]byte("missing"))); !errors.Is(err, ErrArtifactNotFound) {
		t.Fatalf("missing artifact err = %v, want ErrArtifactNotFound (fast, no retries)", err)
	}
	if h := rs.StoreHealth(); h.State != StoreStateOK || h.Retries != 0 {
		t.Fatalf("health = %+v, want pristine ok", h)
	}
}

func TestRegistryStoreHealthDiscovery(t *testing.T) {
	r := New()
	if _, ok := r.StoreHealth(); ok {
		t.Fatal("registry without store must report no health")
	}
	fs, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r.UseStore(fs)
	if _, ok := r.StoreHealth(); ok {
		t.Fatal("bare FSStore is not instrumented; want ok=false")
	}
	r2 := New()
	r2.UseStore(NewRetryStore(fs, fastRetry(nil)))
	if h, ok := r2.StoreHealth(); !ok || h.State != StoreStateOK {
		t.Fatalf("instrumented store health = %+v, %v; want ok state", h, ok)
	}
}
