package registry

import (
	"errors"
	"fmt"
	"time"

	"nfvxai/internal/core"
)

// UseStore attaches a persistence backend. Every subsequent successful
// train (synchronous AddReady, background Create build, streaming Swap)
// writes its artifact and refreshes the manifest; call WarmStart right
// after UseStore to restore the previous process's state first.
func (r *Registry) UseStore(st Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = st
	if r.digests == nil {
		r.digests = map[string]string{}
	}
}

// StoreBackend returns the attached store, or nil.
func (r *Registry) StoreBackend() Store {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.store
}

// reportStoreErr routes asynchronous persistence failures to the
// OnStoreError hook. Persistence is deliberately non-fatal for serving:
// a full disk must not take down inference traffic.
func (r *Registry) reportStoreErr(err error) {
	if err == nil {
		return
	}
	r.mu.RLock()
	hook := r.OnStoreError
	r.mu.RUnlock()
	if hook != nil {
		hook(err)
	}
}

// persistModel encodes the named ready model's pipeline, stores the
// artifact and rewrites the manifest. It runs outside the registry lock
// (encoding a pipeline is not cheap) and serializes store writes through
// storeMu so concurrent retrains cannot interleave manifest versions.
func (r *Registry) persistModel(name string) error {
	r.mu.RLock()
	st := r.store
	var sp Spec
	var p *core.Pipeline
	if e, ok := r.models[name]; ok && e.status == StatusReady {
		sp, p = e.spec, e.pipeline
	}
	r.mu.RUnlock()
	if st == nil || p == nil {
		return nil
	}
	art, err := EncodeArtifact(sp, p)
	if err != nil {
		return fmt.Errorf("registry: persist %q: %w", name, err)
	}
	digest, err := st.PutArtifact(art)
	if err != nil {
		return fmt.Errorf("registry: persist %q: %w", name, err)
	}
	r.mu.Lock()
	if r.digests == nil {
		r.digests = map[string]string{}
	}
	old := r.digests[name]
	r.digests[name] = digest
	// A live model supersedes any orphaned manifest record of its name.
	delete(r.orphans, name)
	r.mu.Unlock()
	if err := r.persistManifest(); err != nil {
		return err
	}
	// GC the superseded artifact (retrains would otherwise grow the store
	// without bound) — but only after the manifest stopped referencing
	// it, and only if nothing else still does (content addressing lets
	// identical pipelines share a digest).
	if old != "" && old != digest {
		r.mu.RLock()
		referenced := false
		for _, d := range r.digests {
			if d == old {
				referenced = true
				break
			}
		}
		for _, rec := range r.orphans {
			if rec.Digest == old {
				referenced = true
				break
			}
		}
		r.mu.RUnlock()
		if !referenced {
			if err := st.DeleteArtifact(old); err != nil {
				return fmt.Errorf("registry: gc %q: %w", name, err)
			}
		}
	}
	return nil
}

// PersistManifest rewrites the manifest from the registry's current
// state. The serving layer calls it after registering a scenario at
// runtime so registered ScenarioSpecs survive restart; model persistence
// calls it internally.
func (r *Registry) PersistManifest() error { return r.persistManifest() }

func (r *Registry) persistManifest() error {
	// storeMu is held across BOTH the state snapshot and the write. If
	// the snapshot were taken outside it, two near-simultaneous persists
	// (a background build finishing while a retrain swaps) could write
	// their manifests in the opposite order they snapshotted, committing
	// the stale one last and dropping a just-trained model from disk.
	// Lock order is storeMu → mu.RLock; no caller holds mu when calling
	// persistManifest, so this cannot deadlock.
	r.storeMu.Lock()
	defer r.storeMu.Unlock()
	r.mu.RLock()
	st := r.store
	r.mu.RUnlock()
	if st == nil {
		return nil
	}
	// On a shared (cluster) store the manifest also carries records
	// written by other nodes. Read the previous manifest first — still
	// under storeMu, so local writers cannot interleave — and merge it
	// below so a rewrite from this node never evicts another node's
	// models. A missing, unreadable or incompatible previous manifest
	// degrades to the single-node behavior: write our own state only.
	prev, prevOK, prevErr := st.GetManifest()
	if prevErr != nil || prev.Version != ManifestVersion {
		prevOK = false
	}
	r.mu.RLock()
	m := Manifest{Version: ManifestVersion, SavedAt: time.Now(), Default: r.defaultKey}
	for name, e := range r.models {
		digest, ok := r.digests[name]
		if !ok || e.status != StatusReady {
			continue // never persisted (still training, failed, or no artifact)
		}
		m.Models = append(m.Models, ModelRecord{
			Spec:      e.spec,
			Digest:    digest,
			CreatedAt: e.createdAt,
			ReadyAt:   e.readyAt,
			Retrains:  e.retrains,
		})
	}
	// Carry forward records whose artifacts failed to restore this boot:
	// dropping them here would turn a transient read error into permanent
	// eviction of a model whose artifact is still on disk. Only a ready,
	// persisted entry of the same name supersedes its orphan — a
	// recreate attempt that is still training (or failed) must not evict
	// the last good artifact.
	for name, rec := range r.orphans {
		if e, ok := r.models[name]; ok && e.status == StatusReady {
			if _, persisted := r.digests[name]; persisted {
				continue
			}
		}
		m.Models = append(m.Models, rec)
	}
	scenarios := r.Scenarios
	r.mu.RUnlock()
	if scenarios != nil {
		m.Scenarios = scenarios.List()
	}
	if prevOK {
		mergeManifest(&m, prev)
	}
	return st.PutManifest(m)
}

// mergeManifest folds the previous (shared) manifest into the local
// snapshot m, last-writer-wins per model on ReadyAt. Names this node
// knows keep the local record unless the previous manifest's record is
// strictly newer (another node retrained the model after our snapshot);
// names this node has never persisted are carried through verbatim —
// they belong to other nodes. Scenario specs union by name with the
// local list winning; the default falls back to the previous manifest's
// when this node has none. Local ties win so a node's own just-written
// artifact is never displaced by an equal-aged record.
//
// One deliberate gap: a clock-skewed peer could stamp a record newer
// than a local retrain that just GC'd the digest that record names. The
// sync loop then reports ErrArtifactNotFound for it until the peer
// persists again; serving is unaffected (adoption is best-effort).
func mergeManifest(m *Manifest, prev Manifest) {
	local := make(map[string]int, len(m.Models))
	for i, rec := range m.Models {
		local[rec.Spec.Name] = i
	}
	for _, rec := range prev.Models {
		if i, ok := local[rec.Spec.Name]; ok {
			if rec.ReadyAt.After(m.Models[i].ReadyAt) {
				m.Models[i] = rec
			}
			continue
		}
		m.Models = append(m.Models, rec)
	}
	haveScenario := make(map[string]bool, len(m.Scenarios))
	for _, sp := range m.Scenarios {
		haveScenario[sp.Name] = true
	}
	for _, sp := range prev.Scenarios {
		if !haveScenario[sp.Name] {
			m.Scenarios = append(m.Scenarios, sp)
		}
	}
	if m.Default == "" {
		m.Default = prev.Default
	}
}

// RestoreError names one model that failed to restore during WarmStart.
type RestoreError struct {
	Name string
	Err  error
}

// WarmStartReport summarizes what a WarmStart restored. Per-model
// failures (missing/corrupt/unreadable artifacts) land in Errors while
// the rest of the registry keeps serving — one bad artifact must not
// block the process from coming up with the others.
type WarmStartReport struct {
	// Models are the restored model names, sorted by manifest order.
	Models []string
	// Scenarios counts scenario specs restored (builtins excluded).
	Scenarios int
	// Default is the restored default model name ("" if none).
	Default string
	// Errors lists models whose artifacts failed to restore.
	Errors []RestoreError
}

// WarmStart restores the registry from the attached store's manifest:
// runtime-registered scenarios first (model specs reference them), then
// every persisted model as a ready entry with its original lifecycle
// timestamps and retrain count, then the default alias. A manifest
// written by an incompatible schema version is ErrManifestVersion; a
// missing manifest is an empty (fresh-store) report.
func (r *Registry) WarmStart(now time.Time) (WarmStartReport, error) {
	var rep WarmStartReport
	st := r.StoreBackend()
	if st == nil {
		return rep, ErrNoStore
	}
	m, ok, err := st.GetManifest()
	if err != nil {
		return rep, err
	}
	if !ok {
		return rep, nil
	}
	if m.Version != ManifestVersion {
		return rep, fmt.Errorf("%w: %d (want %d)", ErrManifestVersion, m.Version, ManifestVersion)
	}
	for _, sp := range m.Scenarios {
		if _, err := r.Scenarios.Register(sp); err != nil {
			if errors.Is(err, core.ErrScenarioExists) {
				continue // builtin or already restored
			}
			rep.Errors = append(rep.Errors, RestoreError{Name: "scenario/" + sp.Name, Err: err})
			continue
		}
		rep.Scenarios++
	}
	for _, rec := range m.Models {
		name := rec.Spec.Name
		if err := r.restoreModel(rec); err != nil {
			rep.Errors = append(rep.Errors, RestoreError{Name: name, Err: err})
			// Keep the record: future manifest rewrites must not evict a
			// model just because one boot could not read its artifact.
			// (Unless a ready, persisted pipeline already owns the name —
			// then the current state supersedes the stale record.)
			r.mu.Lock()
			if r.orphans == nil {
				r.orphans = map[string]ModelRecord{}
			}
			e, live := r.models[name]
			_, persisted := r.digests[name]
			if !(live && e.status == StatusReady && persisted) {
				r.orphans[name] = rec
			}
			r.mu.Unlock()
			continue
		}
		rep.Models = append(rep.Models, name)
	}
	if m.Default != "" {
		r.mu.Lock()
		if _, ok := r.models[m.Default]; ok {
			r.defaultKey = m.Default
		}
		rep.Default = r.defaultKey
		r.mu.Unlock()
	}
	return rep, nil
}

// restoreModel loads one manifest record's artifact into a ready entry,
// preserving its lifecycle metadata. The entry's digest is recorded so a
// later manifest rewrite keeps pointing at the same artifact.
func (r *Registry) restoreModel(rec ModelRecord) error {
	st := r.StoreBackend()
	data, err := st.GetArtifact(rec.Digest)
	if err != nil {
		return err
	}
	sp, p, err := DecodeArtifact(data)
	if err != nil {
		return err
	}
	if sp.Name != rec.Spec.Name {
		return fmt.Errorf("%w: artifact spec name %q != manifest record %q", ErrCorruptArtifact, sp.Name, rec.Spec.Name)
	}
	if err := ValidateName(sp.Name); err != nil {
		return fmt.Errorf("%w: %w", ErrCorruptArtifact, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.models[sp.Name]; exists {
		return fmt.Errorf("registry: %q: %w", sp.Name, ErrExists)
	}
	r.attachCacheLocked(p)
	r.models[sp.Name] = &entry{
		spec:      sp,
		status:    StatusReady,
		createdAt: rec.CreatedAt,
		readyAt:   rec.ReadyAt,
		retrains:  rec.Retrains,
		pipeline:  p,
	}
	if r.digests == nil {
		r.digests = map[string]string{}
	}
	r.digests[sp.Name] = rec.Digest
	if r.defaultKey == "" {
		r.defaultKey = sp.Name
	}
	return nil
}

// ExportArtifact serializes the named ready model into a self-contained
// artifact — the bytes GET /v1/models/{name}/artifact serves. It encodes
// from the live pipeline, so it works with or without an attached store.
func (r *Registry) ExportArtifact(name string) ([]byte, error) {
	r.mu.RLock()
	e, ok := r.models[name]
	var sp Spec
	var p *core.Pipeline
	if ok {
		sp, p = e.spec, e.pipeline
	}
	status := StatusFailed
	if ok {
		status = e.status
	}
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("registry: %q: %w", name, ErrNotFound)
	}
	if status != StatusReady || p == nil {
		return nil, fmt.Errorf("registry: %q is %s: %w", name, status, ErrNotReady)
	}
	return EncodeArtifact(sp, p)
}

// ImportArtifact registers an exported artifact as a ready model. An
// empty overrideName keeps the name embedded in the artifact's spec. The
// imported model persists to the attached store like any other ready
// model. Returns the registered name.
func (r *Registry) ImportArtifact(data []byte, overrideName string, now time.Time) (string, error) {
	sp, p, err := DecodeArtifact(data)
	if err != nil {
		return "", err
	}
	if overrideName != "" {
		sp.Name = overrideName
	}
	return r.AddReady(sp, p, now)
}
