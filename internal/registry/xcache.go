package registry

import (
	"nfvxai/internal/core"
	"nfvxai/internal/xai/xcache"
)

// UseExplainCache attaches the process-wide explanation result cache:
// every pipeline the registry currently serves or later installs
// (AddReady, background builds, Swap, warm start, manifest adoption)
// gets it as its ResultCache. Invalidation is structural — cache keys
// embed the artifact digest, never the model name — so nothing is
// flushed here or on retrain; the registry's only cache duty is dropping
// a swapped-out pipeline's dead-digest entries to bound memory.
//
// Call before serving starts, like UseStore: attachment writes
// Pipeline.ResultCache, which live explain paths read unsynchronized.
func (r *Registry) UseExplainCache(c *xcache.Cache) {
	r.mu.Lock()
	r.xcache = c
	for _, e := range r.models {
		if e.pipeline != nil {
			e.pipeline.ResultCache = c
		}
	}
	r.mu.Unlock()
}

// ExplainCache returns the attached result cache, or nil.
func (r *Registry) ExplainCache() *xcache.Cache {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.xcache
}

// attachCacheLocked wires the result cache into a pipeline about to be
// installed. Callers hold r.mu.
func (r *Registry) attachCacheLocked(p *core.Pipeline) {
	if p != nil && r.xcache != nil {
		p.ResultCache = r.xcache
	}
}

// dropCacheEntries releases the in-process cache entries of a pipeline
// that just left the serving set (hot swap, manifest adoption). Its
// digest can never be requested again through this registry, so the
// entries are pure memory waste — but only a pipeline that actually
// served cache-aware explains has a computed digest, and one that never
// did must not pay a serialization on its way out (DigestIfComputed).
// Runs strictly after r.mu is released: DropDigest walks every cache
// shard, and shard locks must never nest inside the registry state lock.
func (r *Registry) dropCacheEntries(old *core.Pipeline, c *xcache.Cache) {
	if old == nil || c == nil {
		return
	}
	if digest, ok := old.DigestIfComputed(); ok {
		c.DropDigest(digest)
	}
}
