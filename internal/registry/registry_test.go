package registry

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"nfvxai/internal/core"
)

// gatedBuilder blocks each build until release is closed, so tests can
// observe the training state deterministically.
type gatedBuilder struct {
	release chan struct{}
	err     error
}

func (g *gatedBuilder) build(Spec) (*core.Pipeline, error) {
	<-g.release
	if g.err != nil {
		return nil, g.err
	}
	return &core.Pipeline{}, nil
}

func newTestRegistry(g *gatedBuilder) (*Registry, chan string) {
	r := New()
	r.Builder = g.build
	done := make(chan string, 8)
	r.NotifyBuilds(done)
	return r, done
}

func waitDone(t *testing.T, done chan string, want string) {
	t.Helper()
	select {
	case name := <-done:
		if name != want {
			t.Fatalf("build finished for %q, want %q", name, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %q build", want)
	}
}

func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec("web:rf:util")
	if err != nil {
		t.Fatal(err)
	}
	// Hours stays 0 (= unset) so callers can layer their own default
	// without clobbering an explicit ":24".
	if sp.Name != "web/rf/util" || sp.Hours != 0 {
		t.Fatalf("parse: %+v", sp)
	}
	sp, err = ParseSpec("nat:gbt:violation:6")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Hours != 6 || sp.Name != "nat/gbt/violation" {
		t.Fatalf("hours spec: %+v", sp)
	}
	for _, bad := range []string{"web:rf", "web:rf:util:x", "moon:rf:util", "web:svm:util", "web:rf:loss"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestLifecycleTrainingToReady(t *testing.T) {
	g := &gatedBuilder{release: make(chan struct{})}
	r, done := newTestRegistry(g)

	e, err := r.Create(Spec{Scenario: "web", Model: "rf", Target: "util"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Status != StatusTraining || e.Spec.Name != "web/rf/util" {
		t.Fatalf("initial entry %+v", e)
	}
	// Visible while training, but not servable.
	if _, err := r.Lookup("web/rf/util"); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Lookup during training: %v", err)
	}
	got, err := r.Get("web/rf/util")
	if err != nil || got.Status != StatusTraining {
		t.Fatalf("Get during training: %+v, %v", got, err)
	}

	close(g.release)
	waitDone(t, done, "web/rf/util")

	got, err = r.Get("web/rf/util")
	if err != nil || got.Status != StatusReady || got.Pipeline == nil {
		t.Fatalf("after build: %+v, %v", got, err)
	}
	if got.ReadyAt.IsZero() {
		t.Fatal("ReadyAt not stamped")
	}
	if p, err := r.Lookup("web/rf/util"); err != nil || p == nil {
		t.Fatalf("Lookup after ready: %v", err)
	}
}

func TestLifecycleFailed(t *testing.T) {
	g := &gatedBuilder{release: make(chan struct{}), err: errors.New("sim exploded")}
	r, done := newTestRegistry(g)
	if _, err := r.Create(Spec{Scenario: "nat", Model: "gbt", Target: "violation"}); err != nil {
		t.Fatal(err)
	}
	close(g.release)
	waitDone(t, done, "nat/gbt/violation")
	got, err := r.Get("nat/gbt/violation")
	if err != nil || got.Status != StatusFailed || got.Err != "sim exploded" {
		t.Fatalf("failed entry: %+v, %v", got, err)
	}
	if _, err := r.Lookup("nat/gbt/violation"); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Lookup of failed model: %v", err)
	}

	// A failed name is reclaimable: Create again with a working builder
	// retrains instead of returning ErrExists.
	g2 := &gatedBuilder{release: make(chan struct{})}
	r.Builder = g2.build
	e, err := r.Create(Spec{Scenario: "nat", Model: "gbt", Target: "violation"})
	if err != nil {
		t.Fatalf("recreate after failure: %v", err)
	}
	if e.Status != StatusTraining {
		t.Fatalf("recreate status %v", e.Status)
	}
	close(g2.release)
	waitDone(t, done, "nat/gbt/violation")
	if p, err := r.Lookup("nat/gbt/violation"); err != nil || p == nil {
		t.Fatalf("lookup after retry: %v", err)
	}
}

func TestValidateName(t *testing.T) {
	for _, ok := range []string{"web/rf/util", "default", "a.b_c-d/e2"} {
		if err := ValidateName(ok); err != nil {
			t.Fatalf("ValidateName(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"", "/lead", "trail/", "a//b", "a?b", "a#b", "a b", "a/../b", "a/./b", "%2f",
		"x/predict", "x/explain", "whatif", "x/importance", "x/schema"} {
		if err := ValidateName(bad); err == nil {
			t.Fatalf("ValidateName(%q) accepted", bad)
		}
	}
	// Create and AddReady both enforce it.
	r := New()
	if _, err := r.Create(Spec{Name: "bad?name", Scenario: "web", Model: "rf", Target: "util"}); err == nil {
		t.Fatal("Create accepted invalid name")
	}
	if _, err := r.AddReady(Spec{Name: "bad?name"}, &core.Pipeline{}, time.Now()); err == nil {
		t.Fatal("AddReady accepted invalid name")
	}
}

func TestDuplicateAndUnknown(t *testing.T) {
	g := &gatedBuilder{release: make(chan struct{})}
	r, _ := newTestRegistry(g)
	defer close(g.release)
	if _, err := r.Create(Spec{Scenario: "web", Model: "rf", Target: "util"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(Spec{Scenario: "web", Model: "rf", Target: "util"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := r.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown get: %v", err)
	}
	if _, err := r.Lookup("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown lookup: %v", err)
	}
	if err := r.SetDefault("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown default: %v", err)
	}
	if _, err := r.Create(Spec{Scenario: "web", Model: "svm", Target: "util"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	// Unbounded or negative training work is rejected, not enqueued.
	for _, sp := range []Spec{
		{Scenario: "web", Model: "rf", Target: "util", Hours: -1},
		{Scenario: "web", Model: "rf", Target: "util", Hours: MaxHours + 1},
		{Scenario: "web", Model: "rf", Target: "util", ShapSamples: -1},
		{Scenario: "web", Model: "rf", Target: "util", ShapSamples: MaxShapSamples + 1},
	} {
		if _, err := r.Create(sp); err == nil {
			t.Fatalf("out-of-range spec accepted: %+v", sp)
		}
	}
}

func TestAddReadyAndDefault(t *testing.T) {
	r := New()
	name, err := r.AddReady(Spec{Scenario: "web", Model: "rf", Target: "util"}, &core.Pipeline{}, time.Now())
	if err != nil || name != "web/rf/util" {
		t.Fatalf("AddReady: %q, %v", name, err)
	}
	if r.DefaultName() != "web/rf/util" {
		t.Fatalf("default %q", r.DefaultName())
	}
	if _, err := r.AddReady(Spec{Scenario: "web", Model: "rf", Target: "util"}, &core.Pipeline{}, time.Now()); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate AddReady: %v", err)
	}
	name2, err := r.AddReady(Spec{Name: "alt", Scenario: "nat", Model: "gbt", Target: "violation"}, &core.Pipeline{}, time.Now())
	if err != nil || name2 != "alt" {
		t.Fatalf("named AddReady: %q, %v", name2, err)
	}
	if err := r.SetDefault("alt"); err != nil || r.DefaultName() != "alt" {
		t.Fatalf("SetDefault: %v, %q", err, r.DefaultName())
	}
	list := r.List()
	if len(list) != 2 || list[0].Spec.Name != "alt" || list[1].Spec.Name != "web/rf/util" {
		t.Fatalf("list %+v", list)
	}
}

// TestConcurrentReadsDuringSwap hammers Lookup/Get/List while a build
// completes; run with -race this guards the hot-swap path.
func TestConcurrentReadsDuringSwap(t *testing.T) {
	g := &gatedBuilder{release: make(chan struct{})}
	r, done := newTestRegistry(g)
	if _, err := r.Create(Spec{Scenario: "web", Model: "rf", Target: "util"}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if p, err := r.Lookup("web/rf/util"); err == nil && p == nil {
					t.Error("ready lookup returned nil pipeline")
					return
				}
				r.List()
				_, _ = r.Get("web/rf/util")
			}
		}()
	}
	close(g.release)
	waitDone(t, done, "web/rf/util")
	close(stop)
	wg.Wait()
	if p, err := r.Lookup("web/rf/util"); err != nil || p == nil {
		t.Fatalf("post-swap lookup: %v", err)
	}
}

// TestParseSpecErrorPaths pins every rejection class with a distinguishing
// message: segment-count errors name the expected shape, unknown
// scenario/model/target errors name the offending value.
func TestParseSpecErrorPaths(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"", "want scenario:model:target"},
		{"web", "want scenario:model:target"},
		{"web:rf", "want scenario:model:target"},
		{"web:rf:util:24:extra", "want scenario:model:target"},
		{"web:rf:util:zero", `bad hours "zero"`},
		{"web:rf:util:-3", `bad hours "-3"`},
		{"web:rf:util:0", `bad hours "0"`},
		{"moon:rf:util", `scenario "moon"`},
		{"web:svm:util", `unknown model "svm"`},
		{"web:rf:loss", `unknown target "loss"`},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSpec(%q) = %q, want it to mention %q", tc.spec, err, tc.want)
		}
	}
	// The nat-edge canonical name resolves too (aliases are not the only
	// spelling).
	if _, err := ParseSpec("nat-edge:rf:util"); err != nil {
		t.Fatalf("canonical scenario name rejected: %v", err)
	}
}

// TestCreateWithRuntimeScenario proves specs resolve against scenarios
// registered after the registry was built — the POST /v1/scenarios path.
func TestCreateWithRuntimeScenario(t *testing.T) {
	g := &gatedBuilder{release: make(chan struct{})}
	r, done := newTestRegistry(g)
	sp := Spec{Scenario: "edge", Model: "linear", Target: "util"}
	if _, err := r.Create(sp); err == nil {
		t.Fatal("unregistered scenario accepted")
	}
	if _, err := r.Scenarios.Register(core.ScenarioSpec{
		Name:    "edge",
		Groups:  []core.GroupSpec{{Name: "fw", Kind: "firewall"}},
		Traffic: core.TrafficSpec{BaseFPS: 1000},
		SLO:     core.SLOSpec{MaxLatencyMs: 2, MaxLossRate: 0.01},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(sp); err != nil {
		t.Fatal(err)
	}
	close(g.release)
	waitDone(t, done, "edge/linear/util")
	if _, err := r.Lookup("edge/linear/util"); err != nil {
		t.Fatal(err)
	}
}

func TestSwapLifecycle(t *testing.T) {
	g := &gatedBuilder{release: make(chan struct{})}
	r, done := newTestRegistry(g)
	if _, err := r.Swap("nope", &core.Pipeline{}, time.Now()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("swap unknown: %v", err)
	}
	if _, err := r.Create(Spec{Scenario: "web", Model: "rf", Target: "util"}); err != nil {
		t.Fatal(err)
	}
	// Training models cannot be swapped.
	if _, err := r.Swap("web/rf/util", &core.Pipeline{}, time.Now()); !errors.Is(err, ErrNotReady) {
		t.Fatalf("swap while training: %v", err)
	}
	close(g.release)
	waitDone(t, done, "web/rf/util")
	old, err := r.Lookup("web/rf/util")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Swap("web/rf/util", nil, time.Now()); err == nil {
		t.Fatal("nil pipeline swap accepted")
	}
	p2 := &core.Pipeline{}
	swapAt := time.Now()
	n, err := r.Swap("web/rf/util", p2, swapAt)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("swap returned retrain count %d, want 1", n)
	}
	got, err := r.Lookup("web/rf/util")
	if err != nil {
		t.Fatal(err)
	}
	if got == old || got != p2 {
		t.Fatal("lookup did not observe the swapped pipeline")
	}
	e, err := r.Get("web/rf/util")
	if err != nil {
		t.Fatal(err)
	}
	if e.Retrains != 1 || !e.ReadyAt.Equal(swapAt) {
		t.Fatalf("entry after swap: retrains=%d readyAt=%v", e.Retrains, e.ReadyAt)
	}
}
