package registry

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/wire"
)

// storeTestPipeline trains a small real pipeline without the simulator.
func storeTestPipeline(t *testing.T, kind core.ModelKind, seed int64) *core.Pipeline {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New(dataset.Regression, "a", "b", "c")
	for i := 0; i < 200; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		ds.Add(x, 3*x[0]-x[1]+0.2*rng.NormFloat64())
	}
	p, err := core.NewPipeline(kind, ds, seed)
	if err != nil {
		t.Fatal(err)
	}
	p.ShapSamples = 128
	return p
}

func testSpec(name string) Spec {
	return Spec{Name: name, Scenario: "web", Model: "cart", Target: "util", Hours: 1, Seed: 1}
}

func TestFSStoreArtifactRoundTrip(t *testing.T) {
	st, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("artifact payload")
	d1, err := st.PutArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := st.PutArtifact(data)
	if err != nil || d1 != d2 {
		t.Fatalf("content addressing not idempotent: %s vs %s (%v)", d1, d2, err)
	}
	got, err := st.GetArtifact(d1)
	if err != nil || string(got) != string(data) {
		t.Fatalf("get = %q, %v", got, err)
	}
	if _, err := st.GetArtifact(Digest([]byte("other"))); !errors.Is(err, ErrArtifactNotFound) {
		t.Errorf("missing artifact: err = %v, want ErrArtifactNotFound", err)
	}
}

func TestWarmStartRestoresModelsScenariosAndDefault(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// First process: store-attached registry, two models, one runtime
	// scenario, explicit default.
	r1 := New()
	r1.OnStoreError = func(err error) { t.Errorf("store error: %v", err) }
	r1.UseStore(st)
	scenario := core.WebScenarioSpec()
	scenario.Name = "custom-web"
	if _, err := r1.Scenarios.Register(scenario); err != nil {
		t.Fatal(err)
	}
	if err := r1.PersistManifest(); err != nil {
		t.Fatal(err)
	}
	pA := storeTestPipeline(t, core.ModelTree, 1)
	pB := storeTestPipeline(t, core.ModelLinear, 2)
	if _, err := r1.AddReady(testSpec("m/a"), pA, time.Now()); err != nil {
		t.Fatal(err)
	}
	spB := testSpec("m/b")
	spB.Model = "linear"
	if _, err := r1.AddReady(spB, pB, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := r1.SetDefault("m/b"); err != nil {
		t.Fatal(err)
	}

	// Second process: fresh registry warm-started from the same store.
	r2 := New()
	r2.UseStore(st)
	rep, err := r2.WarmStart(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("restore errors: %v", rep.Errors)
	}
	if len(rep.Models) != 2 || rep.Scenarios != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if r2.DefaultName() != "m/b" {
		t.Errorf("default = %q, want m/b", r2.DefaultName())
	}
	if _, err := r2.Scenarios.Lookup("custom-web"); err != nil {
		t.Errorf("runtime scenario not restored: %v", err)
	}
	e, err := r2.Get("m/a")
	if err != nil || e.Status != StatusReady || e.Spec.Model != "cart" {
		t.Fatalf("restored entry = %+v, %v", e, err)
	}

	// Restored predictions are bit-identical to the saved pipeline's.
	probe := pA.Test.X
	want := pA.PredictBatch(probe)
	p2, err := r2.Lookup("m/a")
	if err != nil {
		t.Fatal(err)
	}
	got := p2.PredictBatch(probe)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("prediction %d differs after warm start", i)
		}
	}
}

func TestWarmStartSwapPersistsRetrainedPipeline(t *testing.T) {
	st, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r1 := New()
	r1.UseStore(st)
	if _, err := r1.AddReady(testSpec("m"), storeTestPipeline(t, core.ModelTree, 1), time.Now()); err != nil {
		t.Fatal(err)
	}
	retrained := storeTestPipeline(t, core.ModelTree, 99)
	if _, err := r1.Swap("m", retrained, time.Now()); err != nil {
		t.Fatal(err)
	}

	r2 := New()
	r2.UseStore(st)
	rep, err := r2.WarmStart(time.Now())
	if err != nil || len(rep.Errors) != 0 {
		t.Fatalf("warm start: %v %v", err, rep.Errors)
	}
	e, err := r2.Get("m")
	if err != nil || e.Retrains != 1 {
		t.Fatalf("entry = %+v, %v (want retrains 1)", e, err)
	}
	p2, _ := r2.Lookup("m")
	x := retrained.Test.X[0]
	if math.Float64bits(p2.Model.Predict(x)) != math.Float64bits(retrained.Model.Predict(x)) {
		t.Error("warm start served the pre-swap pipeline")
	}
}

// corruptionFixture builds a store holding one good model and returns
// (store, manifest, good registry entry name).
func corruptionFixture(t *testing.T) (*FSStore, string) {
	t.Helper()
	st, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.UseStore(st)
	if _, err := r.AddReady(testSpec("good"), storeTestPipeline(t, core.ModelTree, 1), time.Now()); err != nil {
		t.Fatal(err)
	}
	return st, "good"
}

func TestCorruptionTruncatedArtifact(t *testing.T) {
	st, good := corruptionFixture(t)
	m, ok, err := st.GetManifest()
	if err != nil || !ok {
		t.Fatal(err)
	}
	// Truncate the artifact on disk: content no longer matches its digest,
	// the signature of a torn write.
	path := filepath.Join(st.Dir(), "artifacts", m.Models[0].Digest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	r := New()
	r.UseStore(st)
	rep, err := r.WarmStart(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 1 || !errors.Is(rep.Errors[0].Err, ErrCorruptArtifact) {
		t.Fatalf("errors = %v, want one ErrCorruptArtifact", rep.Errors)
	}
	if _, err := r.Get(good); !errors.Is(err, ErrNotFound) {
		t.Errorf("corrupt model was registered anyway: %v", err)
	}
}

func TestCorruptionDecodeTruncation(t *testing.T) {
	p := storeTestPipeline(t, core.ModelTree, 1)
	art, err := EncodeArtifact(testSpec("m"), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeArtifact(art[:len(art)-10]); !errors.Is(err, ErrCorruptArtifact) || !errors.Is(err, wire.ErrTruncated) {
		t.Errorf("err = %v, want ErrCorruptArtifact wrapping wire.ErrTruncated", err)
	}
}

func TestCorruptionManifestVersionMismatch(t *testing.T) {
	st, _ := corruptionFixture(t)
	m, _, err := st.GetManifest()
	if err != nil {
		t.Fatal(err)
	}
	m.Version = ManifestVersion + 1
	if err := st.PutManifest(m); err != nil {
		t.Fatal(err)
	}
	r := New()
	r.UseStore(st)
	if _, err := r.WarmStart(time.Now()); !errors.Is(err, ErrManifestVersion) {
		t.Fatalf("err = %v, want ErrManifestVersion", err)
	}
	if r.Len() != 0 {
		t.Error("registry restored models from an incompatible manifest")
	}
}

func TestCorruptionUnknownModelKind(t *testing.T) {
	// Hand-build an artifact whose pipeline embeds an unknown model kind
	// tag, as a future build (or corruption) would produce.
	p := storeTestPipeline(t, core.ModelTree, 1)
	art, err := EncodeArtifact(testSpec("m"), p)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the embedded ml kind tag: the serialized blob contains the
	// tag "tree.cart" exactly once inside the model envelope.
	corrupted := append([]byte(nil), art...)
	idx := bytes.Index(corrupted, []byte("tree.cart"))
	if idx < 0 {
		t.Fatal("kind tag not found in artifact")
	}
	copy(corrupted[idx:], []byte("tree.wat!"))
	_, _, err = DecodeArtifact(corrupted)
	if !errors.Is(err, ErrCorruptArtifact) || !errors.Is(err, ml.ErrUnknownModelKind) {
		t.Fatalf("err = %v, want ErrCorruptArtifact wrapping ml.ErrUnknownModelKind", err)
	}
}

// TestCorruptionLeavesPreviousPipelineServing: a registry that already
// serves a model keeps serving it when a later warm-start-style restore
// of the same name fails (the corrupt artifact is skipped, not swapped).
func TestCorruptionLeavesPreviousPipelineServing(t *testing.T) {
	st, _ := corruptionFixture(t)
	m, _, err := st.GetManifest()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.Dir(), "artifacts", m.Models[0].Digest)
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	// This registry already serves "good" (trained in-process); the
	// corrupt store must not disturb it.
	r := New()
	live := storeTestPipeline(t, core.ModelLinear, 7)
	if _, err := r.AddReady(testSpec("good"), live, time.Now()); err != nil {
		t.Fatal(err)
	}
	r.UseStore(st)
	rep, err := r.WarmStart(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 1 {
		t.Fatalf("errors = %v", rep.Errors)
	}
	got, err := r.Lookup("good")
	if err != nil || got != live {
		t.Fatalf("previous pipeline displaced: %v", err)
	}
}

// TestTransientRestoreFailureKeepsManifestRecord: a model whose
// artifact could not be read at one boot must survive later manifest
// rewrites (orphan carry-forward) and restore normally once readable.
func TestTransientRestoreFailureKeepsManifestRecord(t *testing.T) {
	st, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r1 := New()
	r1.UseStore(st)
	if _, err := r1.AddReady(testSpec("keep/a"), storeTestPipeline(t, core.ModelTree, 1), time.Now()); err != nil {
		t.Fatal(err)
	}
	spB := testSpec("keep/b")
	spB.Model = "linear"
	if _, err := r1.AddReady(spB, storeTestPipeline(t, core.ModelLinear, 2), time.Now()); err != nil {
		t.Fatal(err)
	}

	// Simulate a transient read failure of B's artifact: move it aside.
	m, _, err := st.GetManifest()
	if err != nil {
		t.Fatal(err)
	}
	var digB string
	for _, rec := range m.Models {
		if rec.Spec.Name == "keep/b" {
			digB = rec.Digest
		}
	}
	path := filepath.Join(st.Dir(), "artifacts", digB)
	if err := os.Rename(path, path+".aside"); err != nil {
		t.Fatal(err)
	}

	r2 := New()
	r2.UseStore(st)
	rep, err := r2.WarmStart(time.Now())
	if err != nil || len(rep.Errors) != 1 || len(rep.Models) != 1 {
		t.Fatalf("warm start: %v, %+v", err, rep)
	}
	// A manifest rewrite (retrain of A) must NOT evict B's record.
	if _, err := r2.Swap("keep/a", storeTestPipeline(t, core.ModelTree, 9), time.Now()); err != nil {
		t.Fatal(err)
	}
	m2, _, err := st.GetManifest()
	if err != nil {
		t.Fatal(err)
	}
	foundB := false
	for _, rec := range m2.Models {
		if rec.Spec.Name == "keep/b" && rec.Digest == digB {
			foundB = true
		}
	}
	if !foundB {
		t.Fatal("orphaned record keep/b was evicted from the manifest")
	}

	// The "blip" clears; the next boot restores both.
	if err := os.Rename(path+".aside", path); err != nil {
		t.Fatal(err)
	}
	r3 := New()
	r3.UseStore(st)
	rep3, err := r3.WarmStart(time.Now())
	if err != nil || len(rep3.Errors) != 0 || len(rep3.Models) != 2 {
		t.Fatalf("recovered warm start: %v, %+v", err, rep3)
	}
}

// TestSwapGCsSupersededArtifacts: retrains must not grow the store
// without bound — the superseded artifact is deleted once the manifest
// stops referencing it.
func TestSwapGCsSupersededArtifacts(t *testing.T) {
	st, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.OnStoreError = func(err error) { t.Errorf("store error: %v", err) }
	r.UseStore(st)
	if _, err := r.AddReady(testSpec("m"), storeTestPipeline(t, core.ModelTree, 1), time.Now()); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if _, err := r.Swap("m", storeTestPipeline(t, core.ModelTree, 10+i), time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(st.Dir(), "artifacts"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("artifacts on disk = %d, want 1 (superseded ones GC'd)", len(entries))
	}
	// And the survivor is the live one: a warm start serves the last swap.
	r2 := New()
	r2.UseStore(st)
	rep, err := r2.WarmStart(time.Now())
	if err != nil || len(rep.Errors) != 0 || len(rep.Models) != 1 {
		t.Fatalf("warm start after GC: %v %+v", err, rep)
	}
	e, _ := r2.Get("m")
	if e.Retrains != 3 {
		t.Fatalf("retrains = %d", e.Retrains)
	}
}

// TestLoadPipelineRejectsWidthMismatch: a model wider than its embedded
// schema must fail decode, not panic at predict time.
func TestLoadPipelineRejectsWidthMismatch(t *testing.T) {
	p := storeTestPipeline(t, core.ModelTree, 1)
	art, err := EncodeArtifact(testSpec("m"), p)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the artifact with a dataset narrowed by one feature while
	// keeping the 3-feature model: decode must reject the pairing.
	p2 := &core.Pipeline{
		Kind:        p.Kind,
		Model:       p.Model,
		Train:       p.Train.DropFeatures(p.Train.Names[len(p.Train.Names)-1]),
		Test:        p.Test.DropFeatures(p.Test.Names[len(p.Test.Names)-1]),
		Background:  p.Background,
		ShapSamples: p.ShapSamples,
		Seed:        p.Seed,
	}
	mismatched, err := EncodeArtifact(testSpec("m"), p2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeArtifact(mismatched); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("width mismatch: err = %v, want ErrCorruptArtifact", err)
	}
	// The untampered artifact still decodes.
	if _, _, err := DecodeArtifact(art); err != nil {
		t.Fatal(err)
	}
}

func TestExportImportArtifact(t *testing.T) {
	r1 := New()
	p := storeTestPipeline(t, core.ModelForest, 3)
	if _, err := r1.AddReady(testSpec("m/x"), p, time.Now()); err != nil {
		t.Fatal(err)
	}
	art, err := r1.ExportArtifact("m/x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.ExportArtifact("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("export missing: %v", err)
	}

	r2 := New()
	name, err := r2.ImportArtifact(art, "", time.Now())
	if err != nil || name != "m/x" {
		t.Fatalf("import = %q, %v", name, err)
	}
	if _, err := r2.ImportArtifact(art, "", time.Now()); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate import: err = %v, want ErrExists", err)
	}
	name2, err := r2.ImportArtifact(art, "m/y", time.Now())
	if err != nil || name2 != "m/y" {
		t.Fatalf("renamed import = %q, %v", name2, err)
	}
	p2, err := r2.Lookup("m/x")
	if err != nil {
		t.Fatal(err)
	}
	x := p.Test.X[0]
	if math.Float64bits(p2.Model.Predict(x)) != math.Float64bits(p.Model.Predict(x)) {
		t.Error("imported model predicts differently")
	}
}
