package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FSStore is the filesystem Store: content-addressed artifacts under
// <dir>/artifacts/<digest>, the manifest at <dir>/manifest.json, and
// persisted experiment matrices under <dir>/experiments/<id>.json. All
// writes go through a temp-file-plus-rename so a crash mid-write never
// leaves a torn file behind — at worst a stale one.
type FSStore struct {
	dir string
}

// OpenFSStore opens (creating if needed) a filesystem store rooted at dir.
func OpenFSStore(dir string) (*FSStore, error) {
	for _, sub := range []string{"", "artifacts", "experiments"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("registry: open store: %w", err)
		}
	}
	return &FSStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FSStore) Dir() string { return s.dir }

// writeAtomic writes data to path via a temp file in the same directory
// and an atomic rename.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// PutArtifact implements Store.
func (s *FSStore) PutArtifact(data []byte) (string, error) {
	digest := Digest(data)
	path := filepath.Join(s.dir, "artifacts", digest)
	if _, err := os.Stat(path); err == nil {
		return digest, nil // content-addressed: identical bytes already stored
	}
	if err := writeAtomic(path, data); err != nil {
		return "", fmt.Errorf("registry: put artifact: %w", err)
	}
	return digest, nil
}

// GetArtifact implements Store, verifying the content digest so silent
// on-disk corruption surfaces as ErrCorruptArtifact instead of a decode
// failure deeper in.
func (s *FSStore) GetArtifact(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("%w: invalid digest %q", ErrArtifactNotFound, digest)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, "artifacts", digest))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrArtifactNotFound, digest)
		}
		return nil, fmt.Errorf("registry: get artifact: %w", err)
	}
	if got := Digest(data); got != digest {
		return nil, fmt.Errorf("%w: digest %s, content hashes to %s", ErrCorruptArtifact, digest, got)
	}
	return data, nil
}

// DeleteArtifact implements Store.
func (s *FSStore) DeleteArtifact(digest string) error {
	if !validDigest(digest) {
		return nil
	}
	if err := os.Remove(filepath.Join(s.dir, "artifacts", digest)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("registry: delete artifact: %w", err)
	}
	return nil
}

// validDigest accepts hex SHA-256 strings only (also keeps digests safe
// as file names).
func validDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	for _, c := range d {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// PutManifest implements Store.
func (s *FSStore) PutManifest(m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: put manifest: %w", err)
	}
	if err := writeAtomic(filepath.Join(s.dir, "manifest.json"), data); err != nil {
		return fmt.Errorf("registry: put manifest: %w", err)
	}
	return nil
}

// GetManifest implements Store.
func (s *FSStore) GetManifest() (Manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, "manifest.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return Manifest{}, false, nil
		}
		return Manifest{}, false, fmt.Errorf("registry: get manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("%w: manifest: %w", ErrCorruptArtifact, err)
	}
	return m, true, nil
}

// validExperimentID keeps experiment ids usable as file names.
func validExperimentID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for _, c := range id {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-') {
			return false
		}
	}
	return !strings.HasPrefix(id, ".")
}

// PutExperiment implements Store.
func (s *FSStore) PutExperiment(id string, data []byte) error {
	if !validExperimentID(id) {
		return fmt.Errorf("registry: put experiment: invalid id %q", id)
	}
	if err := writeAtomic(filepath.Join(s.dir, "experiments", id+".json"), data); err != nil {
		return fmt.Errorf("registry: put experiment: %w", err)
	}
	return nil
}

// GetExperiment implements Store.
func (s *FSStore) GetExperiment(id string) ([]byte, error) {
	if !validExperimentID(id) {
		return nil, fmt.Errorf("%w: invalid experiment id %q", ErrArtifactNotFound, id)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, "experiments", id+".json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: experiment %s", ErrArtifactNotFound, id)
		}
		return nil, fmt.Errorf("registry: get experiment: %w", err)
	}
	return data, nil
}

// ListExperiments implements Store.
func (s *FSStore) ListExperiments() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "experiments"))
	if err != nil {
		return nil, fmt.Errorf("registry: list experiments: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, ".json") {
			ids = append(ids, strings.TrimSuffix(name, ".json"))
		}
	}
	sort.Strings(ids)
	return ids, nil
}
