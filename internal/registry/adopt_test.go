package registry

import (
	"errors"
	"testing"
	"time"

	"nfvxai/internal/core"
)

// Shared-store pair: the cluster-replication unit tests run two
// registries over one in-memory bucket, the same shape as two explaind
// nodes sharing an object store.

func newSharedPair(t *testing.T) (*Registry, *Registry, *BlobStore) {
	t.Helper()
	st := NewMemStore()
	mk := func() *Registry {
		r := New()
		r.OnStoreError = func(err error) { t.Errorf("store error: %v", err) }
		r.UseStore(st)
		return r
	}
	return mk(), mk(), st
}

func TestSyncManifestAdoptsRemoteModel(t *testing.T) {
	r1, r2, _ := newSharedPair(t)
	p := storeTestPipeline(t, core.ModelTree, 1)
	name, err := r1.AddReady(testSpec("web/cart/util"), p, time.Now())
	if err != nil {
		t.Fatal(err)
	}

	rep, err := r2.SyncManifest(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Adopted) != 1 || rep.Adopted[0] != name {
		t.Fatalf("adopted = %+v", rep)
	}
	if rep.Default != name {
		t.Fatalf("default = %q, want %q adopted", rep.Default, name)
	}
	if _, err := r2.Lookup(name); err != nil {
		t.Fatalf("adopted model not servable: %v", err)
	}
	if d1, d2 := r1.ArtifactDigest(name), r2.ArtifactDigest(name); d1 == "" || d1 != d2 {
		t.Fatalf("digests diverge: %q vs %q", d1, d2)
	}
	e1, _ := r1.Get(name)
	e2, _ := r2.Get(name)
	if !e1.ReadyAt.Equal(e2.ReadyAt) || e1.Retrains != e2.Retrains {
		t.Fatalf("lifecycle metadata diverges: %+v vs %+v", e1, e2)
	}

	// A second round is a no-op: the record is current.
	rep2, err := r2.SyncManifest(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Adopted) != 0 || len(rep2.Swapped) != 0 || rep2.Skipped != 1 {
		t.Fatalf("second round = %+v, want skip", rep2)
	}
}

func TestSyncManifestSwapsNewerRemoteRetrain(t *testing.T) {
	r1, r2, _ := newSharedPair(t)
	name, err := r1.AddReady(testSpec("web/cart/util"), storeTestPipeline(t, core.ModelTree, 1), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.SyncManifest(time.Now()); err != nil {
		t.Fatal(err)
	}

	// Node 1 retrains (drift hot-swap) with different bytes and a
	// strictly later ReadyAt.
	if _, err := r1.Swap(name, storeTestPipeline(t, core.ModelTree, 99), time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}

	rep, err := r2.SyncManifest(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Swapped) != 1 || rep.Swapped[0] != name {
		t.Fatalf("swap round = %+v", rep)
	}
	if d1, d2 := r1.ArtifactDigest(name), r2.ArtifactDigest(name); d1 != d2 {
		t.Fatalf("digests diverge after swap: %q vs %q", d1, d2)
	}
	e2, _ := r2.Get(name)
	if e2.Retrains != 1 {
		t.Fatalf("retrain count not mirrored: %+v", e2)
	}
}

func TestSyncManifestSkipsLocalTraining(t *testing.T) {
	r1, r2, _ := newSharedPair(t)
	name, err := r1.AddReady(testSpec("web/cart/util"), storeTestPipeline(t, core.ModelTree, 1), time.Now())
	if err != nil {
		t.Fatal(err)
	}

	// r2 has the same name mid-build: the local in-flight build wins
	// until it resolves.
	release := make(chan struct{})
	r2.Builder = func(Spec) (*core.Pipeline, error) {
		<-release
		return storeTestPipeline(t, core.ModelTree, 2), nil
	}
	done := make(chan string, 1)
	r2.NotifyBuilds(done)
	if _, err := r2.Create(testSpec(name)); err != nil {
		t.Fatal(err)
	}

	rep, err := r2.SyncManifest(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Adopted) != 0 || len(rep.Swapped) != 0 || rep.Skipped != 1 {
		t.Fatalf("training round = %+v, want skip", rep)
	}
	close(release)
	<-done
}

func TestSyncManifestMissingArtifactIsPerRecord(t *testing.T) {
	r1, r2, st := newSharedPair(t)
	good, err := r1.AddReady(testSpec("web/cart/good"), storeTestPipeline(t, core.ModelTree, 1), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	bad, err := r1.AddReady(testSpec("web/cart/bad"), storeTestPipeline(t, core.ModelTree, 2), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the clock-skew GC gap: the manifest names an artifact the
	// store no longer holds.
	if err := st.DeleteArtifact(r1.ArtifactDigest(bad)); err != nil {
		t.Fatal(err)
	}

	rep, err := r2.SyncManifest(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Adopted) != 1 || rep.Adopted[0] != good {
		t.Fatalf("adopted = %+v", rep)
	}
	if len(rep.Errors) != 1 || rep.Errors[0].Name != bad || !errors.Is(rep.Errors[0].Err, ErrArtifactNotFound) {
		t.Fatalf("errors = %+v", rep.Errors)
	}
}

func TestSyncManifestNoStoreAndFreshStore(t *testing.T) {
	r := New()
	if _, err := r.SyncManifest(time.Now()); !errors.Is(err, ErrNoStore) {
		t.Fatalf("no store: %v", err)
	}
	r.UseStore(NewMemStore())
	rep, err := r.SyncManifest(time.Now())
	if err != nil || len(rep.Adopted) != 0 {
		t.Fatalf("fresh store: %+v, %v", rep, err)
	}
}

// TestPersistManifestMergesFleetRecords: two nodes persisting disjoint
// models over one store must not evict each other's records — the bug
// class the LWW merge exists to prevent.
func TestPersistManifestMergesFleetRecords(t *testing.T) {
	r1, r2, st := newSharedPair(t)
	if _, err := r1.AddReady(testSpec("web/cart/a"), storeTestPipeline(t, core.ModelTree, 1), time.Now()); err != nil {
		t.Fatal(err)
	}
	// r2 persists a different model WITHOUT having synced r1's: its
	// manifest rewrite must carry r1's record forward.
	if _, err := r2.AddReady(testSpec("web/cart/b"), storeTestPipeline(t, core.ModelTree, 2), time.Now()); err != nil {
		t.Fatal(err)
	}

	m, ok, err := st.GetManifest()
	if err != nil || !ok {
		t.Fatalf("manifest: ok=%v err=%v", ok, err)
	}
	names := map[string]bool{}
	for _, rec := range m.Models {
		names[rec.Spec.Name] = true
	}
	if !names["web/cart/a"] || !names["web/cart/b"] || len(m.Models) != 2 {
		t.Fatalf("merged manifest models = %+v", m.Models)
	}

	// And both nodes converge by syncing.
	if _, err := r1.SyncManifest(time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.SyncManifest(time.Now()); err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 2 || r2.Len() != 2 {
		t.Fatalf("fleet did not converge: %d vs %d models", r1.Len(), r2.Len())
	}
}

// TestPersistManifestLWWKeepsNewerRecord: a stale local persist must not
// roll back a strictly newer record another node wrote.
func TestPersistManifestLWWKeepsNewerRecord(t *testing.T) {
	r1, _, st := newSharedPair(t)
	name, err := r1.AddReady(testSpec("web/cart/util"), storeTestPipeline(t, core.ModelTree, 1), time.Now())
	if err != nil {
		t.Fatal(err)
	}

	// Another "node" writes a strictly newer record for the same name
	// directly into the shared manifest.
	art, err := EncodeArtifact(testSpec(name), storeTestPipeline(t, core.ModelTree, 7))
	if err != nil {
		t.Fatal(err)
	}
	newDigest, err := st.PutArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := st.GetManifest()
	if err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(time.Minute)
	for i := range m.Models {
		if m.Models[i].Spec.Name == name {
			m.Models[i].Digest = newDigest
			m.Models[i].ReadyAt = future
			m.Models[i].Retrains = 3
		}
	}
	if err := st.PutManifest(m); err != nil {
		t.Fatal(err)
	}

	// A local rewrite (SetDefault is the cheapest trigger) must keep the
	// newer remote record, not clobber it with the older local one.
	if err := r1.SetDefault(name); err != nil {
		t.Fatal(err)
	}
	got, _, err := st.GetManifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Models) != 1 || got.Models[0].Digest != newDigest || !got.Models[0].ReadyAt.Equal(future) {
		t.Fatalf("LWW lost the newer record: %+v", got.Models)
	}

	// The sync loop then pulls the newer pipeline locally.
	rep, err := r1.SyncManifest(time.Now())
	if err != nil || len(rep.Swapped) != 1 {
		t.Fatalf("sync after LWW: %+v, %v", rep, err)
	}
	if r1.ArtifactDigest(name) != newDigest {
		t.Fatalf("local digest %q, want %q", r1.ArtifactDigest(name), newDigest)
	}
}
