// Package registry is the model-registry subsystem behind the versioned
// serving API: a concurrent-safe catalog of named scenario×model×target
// pipelines, each with a lifecycle (training → ready | failed). Models are
// trained asynchronously — Create returns immediately with the entry in
// StatusTraining and a background goroutine hot-swaps the trained pipeline
// in when it is ready — so one explaind process can grow new deployments
// while serving traffic from the ones already live.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/xai/xcache"
)

// Status is a model's lifecycle state.
type Status int

const (
	// StatusTraining means the background build is still running; the
	// entry exists but has no servable pipeline yet.
	StatusTraining Status = iota
	// StatusReady means the pipeline is live and serving.
	StatusReady
	// StatusFailed means the build errored; Entry.Err carries the cause.
	StatusFailed
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusTraining:
		return "training"
	case StatusReady:
		return "ready"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Spec names one scenario×model×target combination to train and serve.
type Spec struct {
	// Name is the registry key. Defaults to "scenario/model/target".
	Name string `json:"name,omitempty"`
	// Scenario names a registered scenario — a builtin ("web", "nat") or
	// any spec registered at runtime via the scenario registry.
	Scenario string `json:"scenario"`
	// Model is "linear", "cart", "rf", "gbt" or "mlp".
	Model string `json:"model"`
	// Target is "util", "latency" or "violation".
	Target string `json:"target"`
	// Hours is virtual hours of training telemetry (default 24).
	Hours float64 `json:"hours,omitempty"`
	// Seed drives simulation and training (default 1).
	Seed int64 `json:"seed,omitempty"`
	// ShapSamples bounds KernelSHAP coalitions (0 = pipeline default).
	ShapSamples int `json:"shap_samples,omitempty"`
}

// withDefaults normalizes optional fields and derives the name.
func (sp Spec) withDefaults() Spec {
	if sp.Hours <= 0 {
		sp.Hours = 24
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Name == "" {
		sp.Name = fmt.Sprintf("%s/%s/%s", sp.Scenario, sp.Model, sp.Target)
	}
	return sp
}

// MaxHours caps the virtual telemetry horizon a spec may request (30
// days); MaxShapSamples caps KernelSHAP coalitions. Both bound the work a
// single POST /v1/models can enqueue in a background goroutine.
const (
	MaxHours       = 720.0
	MaxShapSamples = 1 << 16
)

// Validate checks the spec's model, target and work bounds. Scenario
// existence is registry-scoped (scenarios can be registered at runtime),
// so it is checked by Registry.ValidateSpec, not here.
func (sp Spec) Validate() error {
	if _, err := ModelKindFor(sp.Model); err != nil {
		return err
	}
	if _, err := TargetFor(sp.Target); err != nil {
		return err
	}
	if sp.Hours < 0 || sp.Hours > MaxHours {
		return fmt.Errorf("registry: hours %g out of range [0, %g] (0 = default)", sp.Hours, MaxHours)
	}
	if sp.ShapSamples < 0 || sp.ShapSamples > MaxShapSamples {
		return fmt.Errorf("registry: shap_samples %d out of range [0, %d]", sp.ShapSamples, MaxShapSamples)
	}
	return nil
}

// ValidateSpec is Spec.Validate plus scenario resolution against this
// registry's scenario catalog, so specs may reference scenarios registered
// at runtime.
func (r *Registry) ValidateSpec(sp Spec) error {
	if _, err := r.Scenarios.Lookup(sp.Scenario); err != nil {
		return err
	}
	return sp.Validate()
}

// ParseSpec parses the "scenario:model:target[:hours]" form used by
// explaind's repeated -model flag, resolving the scenario against the
// builtin catalog (CLI flags are parsed before anything can be registered
// at runtime). Hours stays 0 when omitted so callers can distinguish
// "unset" from an explicit value; Create, AddReady and BuildPipeline
// default it to 24.
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return Spec{}, fmt.Errorf("registry: spec %q: want scenario:model:target[:hours]", s)
	}
	sp := Spec{Scenario: parts[0], Model: parts[1], Target: parts[2]}
	if len(parts) == 4 {
		h, err := strconv.ParseFloat(parts[3], 64)
		if err != nil || h <= 0 {
			return Spec{}, fmt.Errorf("registry: spec %q: bad hours %q", s, parts[3])
		}
		sp.Hours = h
	}
	if _, err := builtinScenarios.Lookup(sp.Scenario); err != nil {
		return Spec{}, err
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	sp.Name = fmt.Sprintf("%s/%s/%s", sp.Scenario, sp.Model, sp.Target)
	return sp, nil
}

// builtinScenarios backs ParseSpec's scenario resolution: the two paper
// scenarios, shared read-only across all parses.
var builtinScenarios = core.NewScenarioRegistry()

// reservedSegments are the serving actions routed under a model's path;
// a name ending in one would shadow its own endpoints.
var reservedSegments = map[string]bool{
	"predict": true, "explain": true, "whatif": true, "importance": true, "schema": true,
	"explainers": true, "jobs": true, "stream": true, "artifact": true, "import": true,
}

// ValidateName checks that a model name is addressable over the HTTP API:
// slash-separated segments of [A-Za-z0-9._-] with no empty, "." or ".."
// segments, not ending in a reserved action segment. URL delimiters
// ("?", "#", "%", ...) would make the model unreachable once registered.
func ValidateName(name string) error {
	if name == "" {
		return errors.New("registry: empty model name")
	}
	segs := strings.Split(name, "/")
	for _, seg := range segs {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("registry: name %q: empty or dot path segment", name)
		}
		for _, c := range seg {
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
				c == '.' || c == '_' || c == '-') {
				return fmt.Errorf("registry: name %q: invalid character %q", name, c)
			}
		}
	}
	if last := segs[len(segs)-1]; reservedSegments[last] {
		return fmt.Errorf("registry: name %q: reserved trailing segment %q", name, last)
	}
	return nil
}

// ModelKindFor resolves a model-zoo kind by name.
func ModelKindFor(name string) (core.ModelKind, error) {
	for _, k := range core.ZooKinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("registry: unknown model %q (want linear|cart|rf|gbt|mlp)", name)
}

// TargetFor resolves a telemetry prediction target by name.
func TargetFor(name string) (telemetry.TargetKind, error) {
	switch name {
	case "util":
		return telemetry.TargetBottleneckUtil, nil
	case "latency":
		return telemetry.TargetChainLatency, nil
	case "violation":
		return telemetry.TargetViolation, nil
	default:
		return 0, fmt.Errorf("registry: unknown target %q (want util|latency|violation)", name)
	}
}

// BuildPipeline is the production builder: resolve the scenario through
// this registry's scenario catalog, simulate it, train the model, wire
// the explainer background. It is the default Builder of a Registry and
// runs inside Create's background goroutine — which is why the scenario
// is resolved here, at build time, so a spec can reference a scenario
// registered after the process started.
func (r *Registry) BuildPipeline(sp Spec) (*core.Pipeline, error) {
	sp = sp.withDefaults()
	sc, err := r.Scenarios.Scenario(sp.Scenario)
	if err != nil {
		return nil, err
	}
	kind, err := ModelKindFor(sp.Model)
	if err != nil {
		return nil, err
	}
	target, err := TargetFor(sp.Target)
	if err != nil {
		return nil, err
	}
	ds, err := sc.GenerateDataset(sp.Seed, sp.Hours, target)
	if err != nil {
		return nil, err
	}
	p, err := core.NewPipeline(kind, ds, sp.Seed)
	if err != nil {
		return nil, err
	}
	if sp.ShapSamples > 0 {
		p.ShapSamples = sp.ShapSamples
	}
	return p, nil
}

// Entry is a point-in-time snapshot of one registered model.
type Entry struct {
	Spec      Spec
	Status    Status
	Err       string
	CreatedAt time.Time
	ReadyAt   time.Time
	// Retrains counts successful hot-swaps (Swap) since creation; ReadyAt
	// moves forward with each one.
	Retrains int
	// Pipeline is non-nil iff Status == StatusReady.
	Pipeline *core.Pipeline
}

// entry is the mutable record behind Entry snapshots.
type entry struct {
	spec      Spec
	status    Status
	err       string
	createdAt time.Time
	readyAt   time.Time
	retrains  int
	pipeline  *core.Pipeline
}

// Registry is the concurrent-safe model catalog.
type Registry struct {
	// Builder trains a pipeline from a spec. nil selects the registry's
	// own BuildPipeline (which resolves scenarios through Scenarios);
	// tests inject controlled builders to drive lifecycle transitions.
	Builder func(Spec) (*core.Pipeline, error)
	// Scenarios is the scenario catalog model specs resolve against. New
	// seeds it with the builtin paper scenarios; the serving layer
	// registers new specs into it at runtime.
	Scenarios *core.ScenarioRegistry

	// OnStoreError observes asynchronous persistence failures (artifact
	// or manifest writes that happen off the request path). nil drops
	// them; explaind logs them. Set before concurrent use.
	OnStoreError func(error)

	mu         sync.RWMutex
	models     map[string]*entry
	defaultKey string
	// store, when non-nil, is the durable artifact plane (UseStore);
	// digests tracks each persisted model's current artifact address.
	store   Store
	digests map[string]string
	// orphans are manifest records whose artifacts failed to restore at
	// WarmStart (e.g. a transient I/O error). They are carried forward
	// into every manifest rewrite so a blip never permanently evicts a
	// model whose artifact is still intact on disk; a live model taking
	// the same name supersedes its orphan.
	orphans map[string]ModelRecord
	// storeMu serializes manifest writes so concurrent retrains cannot
	// interleave versions.
	storeMu sync.Mutex
	// xcache, when non-nil, is the explanation result cache attached to
	// every installed pipeline (UseExplainCache).
	xcache *xcache.Cache
	// done, when non-nil, receives each finished background build's name
	// (tests use it to wait without polling).
	done chan<- string
}

// New returns an empty registry using the production builder and the
// builtin scenario catalog.
func New() *Registry {
	return &Registry{models: map[string]*entry{}, Scenarios: core.NewScenarioRegistry()}
}

// NotifyBuilds routes every finished background build's model name to ch.
// Call before Create; sends are blocking, so the channel must be drained.
func (r *Registry) NotifyBuilds(ch chan<- string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done = ch
}

// ErrExists reports a Create for a name already registered.
var ErrExists = errors.New("model already exists")

// ErrNotFound reports a lookup of an unregistered name.
var ErrNotFound = errors.New("model not found")

// ErrNotReady reports a serving request against a model that is still
// training or has failed.
var ErrNotReady = errors.New("model not ready")

// AddReady registers an already-trained pipeline under sp.Name (or the
// derived default name) and returns the registered name. The first model
// added becomes the default. Used by explaind for the synchronously
// trained startup model.
func (r *Registry) AddReady(sp Spec, p *core.Pipeline, now time.Time) (string, error) {
	sp = sp.withDefaults()
	if err := ValidateName(sp.Name); err != nil {
		return "", err
	}
	r.mu.Lock()
	if _, ok := r.models[sp.Name]; ok {
		r.mu.Unlock()
		return "", fmt.Errorf("registry: %q: %w", sp.Name, ErrExists)
	}
	r.attachCacheLocked(p)
	r.models[sp.Name] = &entry{
		spec: sp, status: StatusReady, createdAt: now, readyAt: now, pipeline: p,
	}
	if r.defaultKey == "" {
		r.defaultKey = sp.Name
	}
	r.mu.Unlock()
	// Persist outside the lock: a store write must not block lookups.
	r.reportStoreErr(r.persistModel(sp.Name))
	return sp.Name, nil
}

// Create registers sp and trains it asynchronously: the entry is visible
// immediately in StatusTraining, and a background goroutine hot-swaps the
// pipeline in (StatusReady) or records the failure (StatusFailed). The
// returned Entry is the initial training-state snapshot. A name whose
// previous build failed may be created again — retraining after a
// transient failure must not require a process restart — but training and
// ready entries are protected by ErrExists.
func (r *Registry) Create(sp Spec) (Entry, error) {
	if err := r.ValidateSpec(sp); err != nil {
		return Entry{}, err
	}
	sp = sp.withDefaults()
	if err := ValidateName(sp.Name); err != nil {
		return Entry{}, err
	}
	r.mu.Lock()
	if old, ok := r.models[sp.Name]; ok && old.status != StatusFailed {
		r.mu.Unlock()
		return Entry{}, fmt.Errorf("registry: %q: %w", sp.Name, ErrExists)
	}
	e := &entry{spec: sp, status: StatusTraining, createdAt: time.Now()}
	r.models[sp.Name] = e
	if r.defaultKey == "" {
		r.defaultKey = sp.Name
	}
	build := r.Builder
	if build == nil {
		build = r.BuildPipeline
	}
	snap := e.snapshotLocked()
	r.mu.Unlock()

	go func() {
		p, err := build(sp)
		r.mu.Lock()
		if err != nil {
			e.status, e.err = StatusFailed, err.Error()
		} else {
			// Hot swap: readers holding a pipeline from a previous Lookup
			// keep serving it; new lookups see the trained one.
			r.attachCacheLocked(p)
			e.status, e.pipeline, e.readyAt = StatusReady, p, time.Now()
		}
		done := r.done
		r.mu.Unlock()
		if err == nil {
			// The artifact lands before the completion notification, so a
			// test (or operator) that observes "ready" can already restart
			// from the store.
			r.reportStoreErr(r.persistModel(sp.Name))
		}
		if done != nil {
			done <- sp.Name
		}
	}()
	return snap, nil
}

// snapshotLocked copies the entry; callers must hold the registry lock.
func (e *entry) snapshotLocked() Entry {
	return Entry{
		Spec:      e.spec,
		Status:    e.status,
		Err:       e.err,
		CreatedAt: e.createdAt,
		ReadyAt:   e.readyAt,
		Retrains:  e.retrains,
		Pipeline:  e.pipeline,
	}
}

// Swap hot-swaps a ready model's pipeline in place — the streaming
// retrain path — and returns the model's new retrain count. Readers
// holding the old pipeline from a previous Lookup keep serving it; new
// lookups see the retrained one. Only ready models may be swapped: a
// training model has a build in flight that would race the swap, and a
// failed model must go through Create's retry path so its failure stays
// observable.
func (r *Registry) Swap(name string, p *core.Pipeline, now time.Time) (int, error) {
	if p == nil {
		return 0, fmt.Errorf("registry: swap %q: nil pipeline", name)
	}
	r.mu.Lock()
	e, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return 0, fmt.Errorf("registry: %q: %w", name, ErrNotFound)
	}
	if e.status != StatusReady {
		status := e.status
		r.mu.Unlock()
		return 0, fmt.Errorf("registry: swap %q is %s: %w", name, status, ErrNotReady)
	}
	old := e.pipeline
	r.attachCacheLocked(p)
	e.pipeline = p
	e.readyAt = now
	e.retrains++
	retrains := e.retrains
	c := r.xcache
	r.mu.Unlock()
	// The swapped-out artifact's digest can never be requested again —
	// cache keys embed the digest — so its in-process entries are dead
	// weight; release them (outside the lock, like the store write).
	r.dropCacheEntries(old, c)
	// Persist the retrained pipeline so a restart serves the adapted
	// model, not the stale pre-drift one.
	r.reportStoreErr(r.persistModel(name))
	return retrains, nil
}

// Get returns a snapshot of the named model.
func (r *Registry) Get(name string) (Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.models[name]
	if !ok {
		return Entry{}, fmt.Errorf("registry: %q: %w", name, ErrNotFound)
	}
	return e.snapshotLocked(), nil
}

// Lookup returns the live pipeline for a ready model. It distinguishes
// ErrNotFound (no such name) from ErrNotReady (registered but training or
// failed), which the API maps to 404 vs 409.
func (r *Registry) Lookup(name string) (*core.Pipeline, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("registry: %q: %w", name, ErrNotFound)
	}
	if e.status != StatusReady {
		return nil, fmt.Errorf("registry: %q is %s: %w", name, e.status, ErrNotReady)
	}
	return e.pipeline, nil
}

// List returns snapshots of every model, sorted by name.
func (r *Registry) List() []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Entry, 0, len(r.models))
	for _, e := range r.models {
		out = append(out, e.snapshotLocked())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// DefaultName returns the name the legacy unversioned endpoints alias to.
func (r *Registry) DefaultName() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defaultKey
}

// SetDefault redirects the legacy alias to the named model.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	if _, ok := r.models[name]; !ok {
		r.mu.Unlock()
		return fmt.Errorf("registry: %q: %w", name, ErrNotFound)
	}
	r.defaultKey = name
	r.mu.Unlock()
	r.reportStoreErr(r.persistManifest())
	return nil
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
