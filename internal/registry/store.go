// The durable artifact plane: a pluggable Store persists every trained
// pipeline as a content-addressed artifact plus a manifest describing the
// registry's state (models, digests, default, registered scenarios), so a
// restarted explaind warm-starts serving the exact pipelines it was
// serving when it died instead of retraining from scratch.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/wire"
)

// Store is the persistence backend of a registry. Artifacts are opaque
// content-addressed blobs (the digest is the hex SHA-256 of the bytes);
// the manifest is the small mutable index naming them. Implementations
// must make PutManifest atomic — a reader never observes a torn manifest.
// Experiments are persisted result matrices keyed by id.
type Store interface {
	// PutArtifact stores data and returns its content digest. Storing the
	// same bytes twice is idempotent.
	PutArtifact(data []byte) (digest string, err error)
	// GetArtifact returns the artifact bytes for a digest, verifying
	// content integrity: a missing artifact is ErrArtifactNotFound, a
	// digest mismatch ErrCorruptArtifact.
	GetArtifact(digest string) ([]byte, error)
	// DeleteArtifact removes an artifact the manifest no longer
	// references (retrain GC). Deleting a missing artifact is a no-op.
	DeleteArtifact(digest string) error
	// PutManifest atomically replaces the manifest.
	PutManifest(m Manifest) error
	// GetManifest loads the manifest; ok is false when none exists yet.
	GetManifest() (m Manifest, ok bool, err error)
	// PutExperiment persists one experiment result matrix (JSON) by id.
	PutExperiment(id string, data []byte) error
	// GetExperiment loads a persisted experiment result.
	GetExperiment(id string) ([]byte, error)
	// ListExperiments returns the persisted experiment ids, sorted.
	ListExperiments() ([]string, error)
}

// ManifestVersion is the manifest schema version this build reads and
// writes.
const ManifestVersion = 1

// Manifest is the registry's durable index: which artifacts exist, what
// spec each was trained from, which model is the default, and which
// scenario specs were registered at runtime.
type Manifest struct {
	Version int       `json:"version"`
	SavedAt time.Time `json:"saved_at"`
	Default string    `json:"default,omitempty"`
	// Models lists every persisted ready model.
	Models []ModelRecord `json:"models"`
	// Scenarios are the registered scenario specs (builtins included;
	// re-registering a builtin on warm start is a harmless no-op).
	Scenarios []core.ScenarioSpec `json:"scenarios,omitempty"`
}

// ModelRecord names one persisted model artifact.
type ModelRecord struct {
	Spec      Spec      `json:"spec"`
	Digest    string    `json:"digest"`
	CreatedAt time.Time `json:"created_at"`
	ReadyAt   time.Time `json:"ready_at"`
	Retrains  int       `json:"retrains,omitempty"`
}

// Typed store failures. The corruption tests assert these with errors.Is;
// decode-level causes (wire.ErrTruncated, ml.ErrUnknownModelKind,
// core.ErrPipelineVersion) stay reachable through wrapping.
var (
	// ErrManifestVersion reports a manifest written by an incompatible
	// schema version.
	ErrManifestVersion = errors.New("registry: unsupported manifest version")
	// ErrCorruptArtifact reports an artifact whose content does not match
	// its digest or whose structure fails to decode.
	ErrCorruptArtifact = errors.New("registry: corrupt artifact")
	// ErrArtifactNotFound reports a digest with no stored artifact.
	ErrArtifactNotFound = errors.New("registry: artifact not found")
	// ErrArtifactVersion reports an artifact envelope written by an
	// incompatible codec version.
	ErrArtifactVersion = errors.New("registry: unsupported artifact version")
	// ErrNoStore reports a persistence operation on a registry without an
	// attached store.
	ErrNoStore = errors.New("registry: no store attached")
)

// Digest returns the content address of artifact bytes (hex SHA-256).
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// artifactMagic and artifactCodecVersion frame the registry-level
// artifact envelope: spec JSON + pipeline blob.
const (
	artifactMagic        = "NFVA"
	artifactCodecVersion = 1
)

// EncodeArtifact serializes one (spec, trained pipeline) pair into a
// self-contained artifact: the spec travels with the model so an artifact
// can be imported into a fresh registry with no manifest at all.
func EncodeArtifact(sp Spec, p *core.Pipeline) ([]byte, error) {
	specJSON, err := json.Marshal(sp)
	if err != nil {
		return nil, fmt.Errorf("registry: encode artifact spec: %w", err)
	}
	blob, err := p.Save()
	if err != nil {
		return nil, fmt.Errorf("registry: encode artifact: %w", err)
	}
	var w wire.Writer
	w.String(artifactMagic)
	w.U16(artifactCodecVersion)
	w.BytesField(specJSON)
	w.BytesField(blob)
	return w.Bytes(), nil
}

// DecodeArtifact reconstructs the (spec, pipeline) pair from an
// EncodeArtifact blob. Truncation, bad structure and unknown embedded
// model kinds surface as ErrCorruptArtifact wrapping the typed cause.
func DecodeArtifact(data []byte) (Spec, *core.Pipeline, error) {
	r := wire.NewReader(data)
	magic := r.String()
	if err := r.Err(); err != nil {
		return Spec{}, nil, fmt.Errorf("%w: %w", ErrCorruptArtifact, err)
	}
	if magic != artifactMagic {
		return Spec{}, nil, fmt.Errorf("%w: bad magic %q", ErrCorruptArtifact, magic)
	}
	if v := r.U16(); r.Err() == nil && v != artifactCodecVersion {
		return Spec{}, nil, fmt.Errorf("%w: %d (want %d)", ErrArtifactVersion, v, artifactCodecVersion)
	}
	specJSON := r.BytesField()
	blob := r.BytesField()
	if err := r.Err(); err != nil {
		return Spec{}, nil, fmt.Errorf("%w: %w", ErrCorruptArtifact, err)
	}
	var sp Spec
	if err := json.Unmarshal(specJSON, &sp); err != nil {
		return Spec{}, nil, fmt.Errorf("%w: spec: %w", ErrCorruptArtifact, err)
	}
	p, err := core.LoadPipeline(blob)
	if err != nil {
		return Spec{}, nil, fmt.Errorf("%w: %w", ErrCorruptArtifact, err)
	}
	return sp, p, nil
}
