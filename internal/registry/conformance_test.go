package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// The Store-conformance suite: every backend — FSStore, the
// object-store-shaped BlobStore/MemStore, and their RetryStore-wrapped
// variants — must present the identical contract to the registry:
// content-addressed idempotent artifacts, digest verification on read,
// the sentinel-error taxonomy (ErrArtifactNotFound, ErrCorruptArtifact),
// no-op deletes of missing artifacts, an atomic never-torn manifest, and
// experiment id validation. The cluster plane leans on this hard: sync
// and warm-start code paths are backend-agnostic only because the
// contract is.

// storeFixture opens a fresh store of one backend family. corrupt, when
// non-nil, flips bytes inside the stored artifact behind the store's
// back so digest verification can be exercised; nil skips that case
// (a backend with no reachable internals).
type storeFixture struct {
	name    string
	open    func(t *testing.T) Store
	corrupt func(t *testing.T, st Store, digest string)
}

// corruptFS flips a byte of the artifact file on disk.
func corruptFS(dirOf func(Store) string) func(*testing.T, Store, string) {
	return func(t *testing.T, st Store, digest string) {
		t.Helper()
		path := filepath.Join(dirOf(st), "artifacts", digest)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// corruptBlob flips a byte through the blob backend.
func corruptBlob(backendOf func(Store) BlobBackend) func(*testing.T, Store, string) {
	return func(t *testing.T, st Store, digest string) {
		t.Helper()
		b := backendOf(st)
		data, err := b.Get(blobArtifactPrefix + digest)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xff
		if err := b.Put(blobArtifactPrefix+digest, data); err != nil {
			t.Fatal(err)
		}
	}
}

// retryWrap wraps a fixture's store in a RetryStore with no real
// sleeping, reaching through Inner() for corruption.
func retryWrap(f storeFixture) storeFixture {
	wrapped := storeFixture{
		name: "Retry" + f.name,
		open: func(t *testing.T) Store {
			return NewRetryStore(f.open(t), RetryConfig{Seed: 1, Sleep: func(time.Duration) {}})
		},
	}
	if f.corrupt != nil {
		wrapped.corrupt = func(t *testing.T, st Store, digest string) {
			f.corrupt(t, st.(*RetryStore).Inner(), digest)
		}
	}
	return wrapped
}

func storeFixtures() []storeFixture {
	fs := storeFixture{
		name: "FSStore",
		open: func(t *testing.T) Store {
			st, err := OpenFSStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return st
		},
		corrupt: corruptFS(func(st Store) string { return st.(*FSStore).Dir() }),
	}
	mem := storeFixture{
		name: "MemStore",
		open: func(t *testing.T) Store { return NewMemStore() },
		corrupt: corruptBlob(func(st Store) BlobBackend {
			return st.(*BlobStore).Backend()
		}),
	}
	return []storeFixture{fs, mem, retryWrap(fs), retryWrap(mem)}
}

// TestStoreConformance runs the shared contract against every backend.
func TestStoreConformance(t *testing.T) {
	for _, f := range storeFixtures() {
		t.Run(f.name, func(t *testing.T) {
			t.Run("ArtifactRoundTrip", func(t *testing.T) { conformArtifactRoundTrip(t, f) })
			t.Run("ArtifactSentinels", func(t *testing.T) { conformArtifactSentinels(t, f) })
			t.Run("ArtifactDelete", func(t *testing.T) { conformArtifactDelete(t, f) })
			t.Run("DigestVerification", func(t *testing.T) { conformDigestVerification(t, f) })
			t.Run("ManifestAtomicity", func(t *testing.T) { conformManifestAtomicity(t, f) })
			t.Run("Experiments", func(t *testing.T) { conformExperiments(t, f) })
		})
	}
}

func conformArtifactRoundTrip(t *testing.T, f storeFixture) {
	st := f.open(t)
	data := []byte("conformance artifact payload")
	d1, err := st.PutArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != Digest(data) {
		t.Fatalf("digest %s != content address %s", d1, Digest(data))
	}
	d2, err := st.PutArtifact(data)
	if err != nil || d2 != d1 {
		t.Fatalf("re-put not idempotent: %s vs %s (%v)", d1, d2, err)
	}
	got, err := st.GetArtifact(d1)
	if err != nil || string(got) != string(data) {
		t.Fatalf("get = %q, %v", got, err)
	}
}

func conformArtifactSentinels(t *testing.T, f storeFixture) {
	st := f.open(t)
	if _, err := st.GetArtifact(Digest([]byte("never stored"))); !errors.Is(err, ErrArtifactNotFound) {
		t.Errorf("missing artifact: %v, want ErrArtifactNotFound", err)
	}
	for _, bad := range []string{"", "zz", "../../etc/passwd", "ABCDEF"} {
		if _, err := st.GetArtifact(bad); !errors.Is(err, ErrArtifactNotFound) {
			t.Errorf("invalid digest %q: %v, want ErrArtifactNotFound", bad, err)
		}
	}
	if _, err := st.GetExperiment("no-such-experiment"); !errors.Is(err, ErrArtifactNotFound) {
		t.Errorf("missing experiment: %v, want ErrArtifactNotFound", err)
	}
	if _, err := st.GetExperiment("../escape"); !errors.Is(err, ErrArtifactNotFound) {
		t.Errorf("invalid experiment id: %v, want ErrArtifactNotFound", err)
	}
	if err := st.PutExperiment("../escape", []byte("{}")); err == nil {
		t.Error("invalid experiment id must not store")
	}
}

func conformArtifactDelete(t *testing.T, f storeFixture) {
	st := f.open(t)
	if err := st.DeleteArtifact(Digest([]byte("missing"))); err != nil {
		t.Fatalf("delete of missing artifact must be a no-op, got %v", err)
	}
	if err := st.DeleteArtifact("not-a-digest"); err != nil {
		t.Fatalf("delete of invalid digest must be a no-op, got %v", err)
	}
	d, err := st.PutArtifact([]byte("delete me"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteArtifact(d); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetArtifact(d); !errors.Is(err, ErrArtifactNotFound) {
		t.Fatalf("deleted artifact: %v, want ErrArtifactNotFound", err)
	}
}

func conformDigestVerification(t *testing.T, f storeFixture) {
	if f.corrupt == nil {
		t.Skip("backend exposes no corruption hook")
	}
	st := f.open(t)
	d, err := st.PutArtifact([]byte("soon to be corrupted"))
	if err != nil {
		t.Fatal(err)
	}
	f.corrupt(t, st, d)
	if _, err := st.GetArtifact(d); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("corrupted artifact: %v, want ErrCorruptArtifact", err)
	}
}

func conformManifestAtomicity(t *testing.T, f storeFixture) {
	st := f.open(t)
	if _, ok, err := st.GetManifest(); err != nil || ok {
		t.Fatalf("fresh store manifest: ok=%v err=%v, want absent", ok, err)
	}

	// Writers race readers; a reader must only ever observe a complete
	// manifest from some writer — never a torn or half-written one. The
	// SavedAt/Default pair is written consistently by each writer, so
	// tearing would show as a mismatch.
	stamp := func(i int) Manifest {
		return Manifest{
			Version: ManifestVersion,
			SavedAt: time.Unix(int64(i), 0).UTC(),
			Default: fmt.Sprintf("model-%d", i),
			Models: []ModelRecord{{
				Spec:    testSpec(fmt.Sprintf("model-%d", i)),
				Digest:  Digest([]byte(fmt.Sprintf("payload-%d", i))),
				ReadyAt: time.Unix(int64(i), 0).UTC(),
			}},
		}
	}
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 50; i++ {
				if err := st.PutManifest(stamp(w*50 + i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m, ok, err := st.GetManifest()
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			if !ok || len(m.Models) != 1 {
				continue
			}
			want := fmt.Sprintf("model-%d", m.SavedAt.Unix())
			if m.Default != want || m.Models[0].Spec.Name != want {
				t.Errorf("torn manifest: saved_at=%v default=%q model=%q",
					m.SavedAt.Unix(), m.Default, m.Models[0].Spec.Name)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()

	m, ok, err := st.GetManifest()
	if err != nil || !ok {
		t.Fatalf("final manifest: ok=%v err=%v", ok, err)
	}
	if m.Version != ManifestVersion {
		t.Fatalf("version %d", m.Version)
	}
}

func conformExperiments(t *testing.T, f storeFixture) {
	st := f.open(t)
	ids, err := st.ListExperiments()
	if err != nil || len(ids) != 0 {
		t.Fatalf("fresh store experiments = %v, %v", ids, err)
	}
	if err := st.PutExperiment("job-2", []byte(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.PutExperiment("job-1", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	got, err := st.GetExperiment("job-1")
	if err != nil || string(got) != `{"a":1}` {
		t.Fatalf("get experiment = %q, %v", got, err)
	}
	ids, err = st.ListExperiments()
	if err != nil || len(ids) != 2 || ids[0] != "job-1" || ids[1] != "job-2" {
		t.Fatalf("list = %v, %v (want sorted ids)", ids, err)
	}
}
