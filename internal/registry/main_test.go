package registry

import (
	"testing"

	"nfvxai/internal/testutil/leakcheck"
)

// TestMain fails the package when background goroutines (build workers,
// retry sleepers) outlive the tests — persistence failures must degrade,
// never leak.
func TestMain(m *testing.M) { leakcheck.Main(m) }
