// Fault injection for the artifact plane: ChaosStore decorates any Store
// with seeded, deterministic failures — transient errors, added latency,
// and torn (silently lost) writes. It exists for the chaos test suite and
// CI smoke runs: wrap an FSStore in a ChaosStore, wrap that in a
// RetryStore, and assert the stack's invariants under 20% error rates.
// Torn writes model the observable outcome of a crash mid-write under
// FSStore's temp-file+rename protocol: the file simply never appears.
package registry

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the transient failure ChaosStore injects; Transient
// classifies it retryable, like the real I/O errors it stands in for.
var ErrInjected = fmt.Errorf("registry: injected chaos failure")

// ChaosConfig tunes a ChaosStore. All probabilities are in [0, 1].
type ChaosConfig struct {
	// ErrRate is the probability any operation fails with ErrInjected
	// before reaching the backend.
	ErrRate float64
	// TornRate is the probability a write (PutArtifact, PutManifest,
	// PutExperiment) reports success without persisting anything.
	TornRate float64
	// Latency is added to every operation that passes injection.
	Latency time.Duration
	// Seed drives the injection stream; 0 means 1. The same seed and call
	// sequence injects the same faults.
	Seed int64
	// Sleep replaces time.Sleep in tests; nil means real sleeping.
	Sleep func(time.Duration)
}

// ChaosStore injects faults in front of a wrapped Store. Safe for
// concurrent use; the rng is guarded, and concurrency only affects which
// caller draws which fault, not the fault sequence itself.
type ChaosStore struct {
	inner Store
	cfg   ChaosConfig

	mu       sync.Mutex
	rng      *rand.Rand
	injected uint64
	torn     uint64
}

// NewChaosStore wraps inner with fault injection.
func NewChaosStore(inner Store, cfg ChaosConfig) *ChaosStore {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &ChaosStore{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Injected returns how many operations failed by injection; Torn how
// many writes were silently dropped.
func (c *ChaosStore) Injected() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

func (c *ChaosStore) Torn() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.torn
}

// inject draws the fault decision for one operation: error, torn write
// (writes only), or pass-through.
func (c *ChaosStore) inject(op string, write bool) (fail error, torn bool) {
	c.mu.Lock()
	if c.cfg.ErrRate > 0 && c.rng.Float64() < c.cfg.ErrRate {
		c.injected++
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrInjected, op), false
	}
	if write && c.cfg.TornRate > 0 && c.rng.Float64() < c.cfg.TornRate {
		c.torn++
		c.mu.Unlock()
		torn = true
	} else {
		c.mu.Unlock()
	}
	if c.cfg.Latency > 0 {
		c.cfg.Sleep(c.cfg.Latency)
	}
	return nil, torn
}

func (c *ChaosStore) PutArtifact(data []byte) (string, error) {
	fail, torn := c.inject("put artifact", true)
	if fail != nil {
		return "", fail
	}
	if torn {
		// Lost write: report the digest the caller expects, persist
		// nothing. A later GetArtifact sees ErrArtifactNotFound, exactly
		// like a crash between temp-write and rename.
		return Digest(data), nil
	}
	return c.inner.PutArtifact(data)
}

func (c *ChaosStore) GetArtifact(digest string) ([]byte, error) {
	if fail, _ := c.inject("get artifact", false); fail != nil {
		return nil, fail
	}
	return c.inner.GetArtifact(digest)
}

func (c *ChaosStore) DeleteArtifact(digest string) error {
	if fail, _ := c.inject("delete artifact", false); fail != nil {
		return fail
	}
	return c.inner.DeleteArtifact(digest)
}

func (c *ChaosStore) PutManifest(m Manifest) error {
	fail, torn := c.inject("put manifest", true)
	if fail != nil {
		return fail
	}
	if torn {
		return nil // lost write: the previous manifest stays current
	}
	return c.inner.PutManifest(m)
}

func (c *ChaosStore) GetManifest() (Manifest, bool, error) {
	if fail, _ := c.inject("get manifest", false); fail != nil {
		return Manifest{}, false, fail
	}
	return c.inner.GetManifest()
}

func (c *ChaosStore) PutExperiment(id string, data []byte) error {
	fail, torn := c.inject("put experiment", true)
	if fail != nil {
		return fail
	}
	if torn {
		return nil
	}
	return c.inner.PutExperiment(id, data)
}

func (c *ChaosStore) GetExperiment(id string) ([]byte, error) {
	if fail, _ := c.inject("get experiment", false); fail != nil {
		return nil, fail
	}
	return c.inner.GetExperiment(id)
}

func (c *ChaosStore) ListExperiments() ([]string, error) {
	if fail, _ := c.inject("list experiments", false); fail != nil {
		return nil, fail
	}
	return c.inner.ListExperiments()
}
