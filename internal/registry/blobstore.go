package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrBlobNotFound reports a blob key with no stored object. BlobStore
// maps it onto the registry's artifact sentinels; adapters for real
// object stores should return it (wrapped) for their native not-found
// condition (e.g. S3 NoSuchKey, HTTP 404).
var ErrBlobNotFound = errors.New("registry: blob not found")

// BlobBackend is the minimal object-store surface BlobStore builds a
// registry Store on: a flat keyspace of opaque blobs with list-by-prefix.
// It is deliberately shaped like S3/GCS/MinIO — Put maps to PutObject,
// Get to GetObject, Delete to DeleteObject, List to ListObjectsV2 — so a
// cloud adapter satisfies it with one thin type and the whole cluster
// plane (shared manifests, artifact sync) works against a real bucket
// unchanged.
type BlobBackend interface {
	// Put stores data under key, replacing any existing object
	// atomically: a concurrent Get sees either the old or the new bytes,
	// never a mix.
	Put(key string, data []byte) error
	// Get returns the object's bytes, or ErrBlobNotFound.
	Get(key string) ([]byte, error)
	// Delete removes an object; deleting a missing key is a no-op.
	Delete(key string) error
	// List returns the keys under prefix, sorted.
	List(prefix string) ([]string, error)
}

// MemBlob is an in-memory BlobBackend: the shared bucket of an
// in-process cluster and the reference implementation the conformance
// suite checks real adapters against. Safe for concurrent use across
// goroutines — which is how a multi-node test shares one "bucket".
type MemBlob struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// NewMemBlob returns an empty in-memory bucket.
func NewMemBlob() *MemBlob {
	return &MemBlob{data: map[string][]byte{}}
}

// Put implements BlobBackend.
func (b *MemBlob) Put(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	b.data[key] = cp
	b.mu.Unlock()
	return nil
}

// Get implements BlobBackend.
func (b *MemBlob) Get(key string) ([]byte, error) {
	b.mu.RLock()
	data, ok := b.data[key]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrBlobNotFound, key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Delete implements BlobBackend.
func (b *MemBlob) Delete(key string) error {
	b.mu.Lock()
	delete(b.data, key)
	b.mu.Unlock()
	return nil
}

// List implements BlobBackend.
func (b *MemBlob) List(prefix string) ([]string, error) {
	b.mu.RLock()
	var keys []string
	for k := range b.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	b.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Len returns the number of stored objects.
func (b *MemBlob) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.data)
}

// Blob key layout: mirrors FSStore's directory layout so the two store
// families stay interchangeable and debuggable with the same mental map.
const (
	blobArtifactPrefix   = "artifacts/"
	blobManifestKey      = "manifest.json"
	blobExperimentPrefix = "experiments/"
)

// BlobStore adapts any BlobBackend into a registry Store: artifacts at
// artifacts/<digest>, the manifest at manifest.json, experiments at
// experiments/<id>.json. Digest verification on read and the sentinel
// taxonomy match FSStore exactly (the conformance suite enforces it).
type BlobStore struct {
	b BlobBackend
}

// NewBlobStore wraps a blob backend as a registry Store.
func NewBlobStore(b BlobBackend) *BlobStore { return &BlobStore{b: b} }

// NewMemStore returns a Store backed by a fresh in-memory bucket — the
// shared store of an in-process cluster, and the object-store-shaped
// counterpart to OpenFSStore.
func NewMemStore() *BlobStore { return NewBlobStore(NewMemBlob()) }

// Backend exposes the underlying blob backend (so several in-process
// registries can share one bucket).
func (s *BlobStore) Backend() BlobBackend { return s.b }

// PutArtifact implements Store.
func (s *BlobStore) PutArtifact(data []byte) (string, error) {
	digest := Digest(data)
	if err := s.b.Put(blobArtifactPrefix+digest, data); err != nil {
		return "", fmt.Errorf("registry: put artifact: %w", err)
	}
	return digest, nil
}

// GetArtifact implements Store, verifying the content digest like
// FSStore does.
func (s *BlobStore) GetArtifact(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("%w: invalid digest %q", ErrArtifactNotFound, digest)
	}
	data, err := s.b.Get(blobArtifactPrefix + digest)
	if err != nil {
		if errors.Is(err, ErrBlobNotFound) {
			return nil, fmt.Errorf("%w: %s", ErrArtifactNotFound, digest)
		}
		return nil, fmt.Errorf("registry: get artifact: %w", err)
	}
	if got := Digest(data); got != digest {
		return nil, fmt.Errorf("%w: digest %s, content hashes to %s", ErrCorruptArtifact, digest, got)
	}
	return data, nil
}

// DeleteArtifact implements Store.
func (s *BlobStore) DeleteArtifact(digest string) error {
	if !validDigest(digest) {
		return nil
	}
	if err := s.b.Delete(blobArtifactPrefix + digest); err != nil {
		return fmt.Errorf("registry: delete artifact: %w", err)
	}
	return nil
}

// PutManifest implements Store. Atomicity is delegated to the backend's
// Put contract.
func (s *BlobStore) PutManifest(m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: put manifest: %w", err)
	}
	if err := s.b.Put(blobManifestKey, data); err != nil {
		return fmt.Errorf("registry: put manifest: %w", err)
	}
	return nil
}

// GetManifest implements Store.
func (s *BlobStore) GetManifest() (Manifest, bool, error) {
	data, err := s.b.Get(blobManifestKey)
	if err != nil {
		if errors.Is(err, ErrBlobNotFound) {
			return Manifest{}, false, nil
		}
		return Manifest{}, false, fmt.Errorf("registry: get manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("%w: manifest: %w", ErrCorruptArtifact, err)
	}
	return m, true, nil
}

// PutExperiment implements Store.
func (s *BlobStore) PutExperiment(id string, data []byte) error {
	if !validExperimentID(id) {
		return fmt.Errorf("registry: put experiment: invalid id %q", id)
	}
	if err := s.b.Put(blobExperimentPrefix+id+".json", data); err != nil {
		return fmt.Errorf("registry: put experiment: %w", err)
	}
	return nil
}

// GetExperiment implements Store.
func (s *BlobStore) GetExperiment(id string) ([]byte, error) {
	if !validExperimentID(id) {
		return nil, fmt.Errorf("%w: invalid experiment id %q", ErrArtifactNotFound, id)
	}
	data, err := s.b.Get(blobExperimentPrefix + id + ".json")
	if err != nil {
		if errors.Is(err, ErrBlobNotFound) {
			return nil, fmt.Errorf("%w: experiment %s", ErrArtifactNotFound, id)
		}
		return nil, fmt.Errorf("registry: get experiment: %w", err)
	}
	return data, nil
}

// ListExperiments implements Store.
func (s *BlobStore) ListExperiments() ([]string, error) {
	keys, err := s.b.List(blobExperimentPrefix)
	if err != nil {
		return nil, fmt.Errorf("registry: list experiments: %w", err)
	}
	ids := make([]string, 0, len(keys))
	for _, k := range keys {
		name := strings.TrimPrefix(k, blobExperimentPrefix)
		if strings.HasSuffix(name, ".json") && !strings.Contains(name, "/") {
			ids = append(ids, strings.TrimSuffix(name, ".json"))
		}
	}
	return ids, nil
}
