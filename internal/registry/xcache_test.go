package registry

import (
	"sync"
	"testing"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/xai"
	"nfvxai/internal/xai/xcache"
)

func cacheKey(digest string, i int) xcache.Key {
	return xcache.Key{Digest: digest, Method: "kernelshap", Opts: "o", Instance: string(rune('a' + i))}
}

// TestSwapDropsOldDigestEntries pins the swap-time invalidation
// contract: invalidation is structural (the new artifact has a new
// digest and simply misses), but Swap must still release the retired
// digest's in-process entries — they can never be requested again and
// are pure memory waste. Run with -race: readers hammer the cache while
// the swap drops.
func TestSwapDropsOldDigestEntries(t *testing.T) {
	r := New()
	c := xcache.New(xcache.Config{})
	r.UseExplainCache(c)
	if r.ExplainCache() != c {
		t.Fatal("ExplainCache getter")
	}

	oldPipe := &core.Pipeline{}
	if _, err := r.AddReady(Spec{Scenario: "web", Model: "rf", Target: "util"}, oldPipe, time.Now()); err != nil {
		t.Fatal(err)
	}
	oldDigest := oldPipe.ContentDigest() // as the first explain would
	keep := &core.Pipeline{}
	if _, err := r.AddReady(Spec{Scenario: "nat", Model: "rf", Target: "util"}, keep, time.Now()); err != nil {
		t.Fatal(err)
	}
	keepDigest := keep.ContentDigest()

	attr := xai.Attribution{Phi: []float64{1, 2}}
	for i := 0; i < 16; i++ {
		c.Put(cacheKey(oldDigest, i), attr)
		c.Put(cacheKey(keepDigest, i), attr)
	}

	// Concurrent readers across the swap: -race proves the shard locks
	// and the drop path compose.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Get(cacheKey(oldDigest, 3))
					c.Get(cacheKey(keepDigest, 3))
				}
			}
		}()
	}

	newPipe := &core.Pipeline{}
	if _, err := r.Swap("web/rf/util", newPipe, time.Now()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	for i := 0; i < 16; i++ {
		if _, ok := c.Get(cacheKey(oldDigest, i)); ok {
			t.Fatalf("entry %d for the retired digest survived the swap", i)
		}
		if _, ok := c.Get(cacheKey(keepDigest, i)); !ok {
			t.Fatalf("entry %d for the untouched model was dropped", i)
		}
	}
	if c.Len() != 16 {
		t.Fatalf("Len = %d, want 16", c.Len())
	}
}

// TestSwapWithoutDigestIsFree: swapping out a pipeline that never served
// a cache-aware explain must not force an artifact serialization just to
// find entries that cannot exist.
func TestSwapWithoutDigestIsFree(t *testing.T) {
	r := New()
	c := xcache.New(xcache.Config{})
	r.UseExplainCache(c)
	p := &core.Pipeline{}
	if _, err := r.AddReady(Spec{Scenario: "web", Model: "rf", Target: "util"}, p, time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.DigestIfComputed(); ok {
		t.Fatal("digest must not be computed by registration alone")
	}
	if _, err := r.Swap("web/rf/util", &core.Pipeline{}, time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.DigestIfComputed(); ok {
		t.Fatal("swap must not force the retired pipeline's digest")
	}
}

// TestUseExplainCacheAttachesExisting: attaching a cache after models
// are registered wires every live pipeline, and later additions inherit
// it.
func TestUseExplainCacheAttachesExisting(t *testing.T) {
	r := New()
	p1 := &core.Pipeline{}
	if _, err := r.AddReady(Spec{Scenario: "web", Model: "rf", Target: "util"}, p1, time.Now()); err != nil {
		t.Fatal(err)
	}
	c := xcache.New(xcache.Config{})
	r.UseExplainCache(c)
	if p1.ResultCache != c {
		t.Fatal("existing pipeline not attached")
	}
	p2 := &core.Pipeline{}
	if _, err := r.AddReady(Spec{Scenario: "nat", Model: "rf", Target: "util"}, p2, time.Now()); err != nil {
		t.Fatal(err)
	}
	if p2.ResultCache != c {
		t.Fatal("later pipeline not attached")
	}
}
