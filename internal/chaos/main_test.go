package chaos

import (
	"testing"

	"nfvxai/internal/testutil/leakcheck"
)

// TestMain fails the suite when chaos-injected failures strand goroutines
// (stuck retries, wedged swaps, undrained feeds) — the core "no wedged
// locks, no leaks" invariant of the resilience plane.
func TestMain(m *testing.M) { leakcheck.Main(m) }
