package chaos

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nfvxai/internal/cluster"
	"nfvxai/internal/registry"
	"nfvxai/internal/serve"
)

// Cluster chaos: the node-down and partition scenarios from the serving
// fleet, run on top of the same fault-injected store plane as the rest
// of the suite. Every node reads and writes the shared bucket through a
// ChaosStore (20% error rate) behind a RetryStore, so replication sync,
// manifest merges and artifact fetches all run under store faults while
// nodes die. The resilience contract is unchanged: every response stays
// inside allowedStatus, and the fleet keeps answering 200s.

// fleetNode is one chaos-fleet member: a full serving stack whose store
// chain is shared-bucket ← BlobStore ← ChaosStore ← RetryStore.
type fleetNode struct {
	id    string
	reg   *registry.Registry
	chaos *registry.ChaosStore
	s     *serve.Server
	hs    *httptest.Server
	cl    *cluster.Cluster
	syn   *cluster.Syncer
}

// newChaosFleet boots n nodes over one shared in-memory bucket with
// per-node store fault injection. Store errors and sync errors are
// tolerated (the retry plane exists to absorb them); only contract
// violations fail the test.
func newChaosFleet(t *testing.T, n int, errRate float64, seed int64) []*fleetNode {
	t.Helper()
	blob := registry.NewMemBlob()
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		id := fmt.Sprintf("node-%c", 'a'+i)
		nd := &fleetNode{id: id}
		nd.chaos = registry.NewChaosStore(registry.NewBlobStore(blob), registry.ChaosConfig{
			ErrRate: errRate,
			Seed:    seed + int64(i),
		})
		nd.reg = registry.New()
		nd.reg.OnStoreError = func(error) {} // chaos-injected; retries absorb most
		nd.reg.UseStore(registry.NewRetryStore(nd.chaos, registry.RetryConfig{
			Seed:  seed + int64(i),
			Sleep: func(time.Duration) {},
		}))
		nd.s = serve.NewServer(nd.reg)
		nd.s.NodeID = id
		nd.hs = httptest.NewServer(nd.s)
		nodes[i] = nd
	}
	members := make([]cluster.Node, n)
	for i, nd := range nodes {
		members[i] = cluster.Node{ID: nd.id, URL: nd.hs.URL}
	}
	for _, nd := range nodes {
		c, err := cluster.New(cluster.Config{
			Self:          nd.id,
			Nodes:         members,
			Replication:   2,
			ProbeInterval: 50 * time.Millisecond,
			ProbeTimeout:  500 * time.Millisecond,
			DownAfter:     2,
		})
		if err != nil {
			t.Fatal(err)
		}
		nd.cl = c
		nd.syn = &cluster.Syncer{Reg: nd.reg, Interval: 100 * time.Millisecond}
		nd.s.Cluster = c
		nd.s.Syncer = nd.syn
		c.Start()
		nd.syn.Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.syn.Stop()
			nd.cl.Stop()
			nd.hs.Close()
			nd.s.Close()
		}
	})
	return nodes
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// notOwnedBy returns a model name whose owner set excludes the node, so
// a request for it at that node must proxy or fall back.
func notOwnedBy(t *testing.T, c *cluster.Cluster, id string) string {
	t.Helper()
	for i := 0; i < 2000; i++ {
		name := fmt.Sprintf("web/rf/m%d", i)
		owned := false
		for _, o := range c.Owners(name) {
			if o.ID == id {
				owned = true
				break
			}
		}
		if !owned {
			return name
		}
	}
	t.Fatal("no model found outside the node's ownership")
	return ""
}

func chaosSpec(name string) registry.Spec {
	return registry.Spec{Name: name, Scenario: "web", Model: "rf", Target: "util", Hours: 1, Seed: 1}
}

// TestChaosClusterOwnerDown kills one node of a three-node fleet — the
// owner a survivor proxies to — and hammers the survivors while every
// store operation fails 20% of the time. All responses must stay inside
// the resilience contract (fallback and re-route may shed, never 500),
// the fleet must keep producing 200s, and the survivors' health view
// must mark the dead peer down.
func TestChaosClusterOwnerDown(t *testing.T) {
	nodes := newChaosFleet(t, 3, 0.2, 42)
	b := nodes[1]
	name := notOwnedBy(t, b.cl, b.id)
	if _, err := nodes[0].reg.AddReady(chaosSpec(name), trainPipeline(t), time.Now()); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		nd := nd
		waitUntil(t, 10*time.Second, nd.id+" adopting "+name, func() bool {
			_, err := nd.reg.Lookup(name)
			return err == nil
		})
	}

	// Kill the node B currently routes to (abrupt death, not a drain).
	target, decision := b.cl.Route(name)
	if decision != cluster.RouteProxy {
		t.Fatalf("route = %v via %v; B must not own %s", target, decision, name)
	}
	var dead *fleetNode
	for _, nd := range nodes {
		if nd.id == target.ID {
			dead = nd
		}
	}
	dead.hs.CloseClientConnections()
	dead.hs.Close()

	// Hammer the survivors concurrently under store chaos + node death.
	p := trainPipeline(t)
	instance := append([]float64(nil), p.Train.X[0]...)
	survivors := []*fleetNode{}
	for _, nd := range nodes {
		if nd != dead {
			survivors = append(survivors, nd)
		}
	}
	var ok200 atomic.Int64
	var wg sync.WaitGroup
	const workers, rounds = 4, 10
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				nd := survivors[(w+i)%len(survivors)]
				st := &stack{srv: nd.hs}
				switch i % 3 {
				case 0:
					resp, err := st.post("/v1/models/"+name+"/predict", map[string]any{"features": instance})
					if checkResponse(t, "predict-during-death", resp, err) == 200 {
						ok200.Add(1)
					}
				case 1:
					resp, err := st.post("/v1/models/"+name+"/explain", map[string]any{
						"features": instance, "budget_ms": 200,
					})
					checkResponse(t, "explain-during-death", resp, err)
				case 2:
					resp, err := st.get("/healthz")
					checkResponse(t, "healthz-during-death", resp, err)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if ok200.Load() == 0 {
		t.Fatal("no successful predicts after owner death under store chaos")
	}

	// Survivors converge on the death: probe loops mark the peer down.
	for _, nd := range survivors {
		nd := nd
		waitUntil(t, 5*time.Second, nd.id+" marking "+dead.id+" down", func() bool {
			for _, p := range nd.cl.Peers() {
				if p.ID == dead.id {
					return !p.Alive
				}
			}
			return false
		})
	}
	if nodes[0].chaos.Injected() == 0 {
		t.Fatal("chaos store injected nothing; the scenario exercised no store faults")
	}
}

// TestChaosClusterPartitionedNodeStillSyncs partitions one node off the
// HTTP plane (its listener dies, peers mark it down) while the store
// plane stays reachable. The partitioned node must keep adopting models
// trained on the far side through the shared store — replication rides
// the store, not the peer network — and the majority side must keep
// serving within the contract, routing around the partitioned owner.
func TestChaosClusterPartitionedNodeStillSyncs(t *testing.T) {
	nodes := newChaosFleet(t, 3, 0.2, 7)
	a, c := nodes[0], nodes[2]

	// Partition C: peers can no longer reach it, but its own loops run on.
	c.hs.CloseClientConnections()
	c.hs.Close()
	for _, nd := range []*fleetNode{nodes[0], nodes[1]} {
		nd := nd
		waitUntil(t, 5*time.Second, nd.id+" marking "+c.id+" down", func() bool {
			for _, p := range nd.cl.Peers() {
				if p.ID == c.id {
					return !p.Alive
				}
			}
			return false
		})
	}

	// A model trained on A after the partition still reaches C: the sync
	// loop pulls it from the shared store with no peer HTTP involved.
	name := notOwnedBy(t, a.cl, a.id) // A must route it away from itself
	if _, err := a.reg.AddReady(chaosSpec(name), trainPipeline(t), time.Now()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "partitioned "+c.id+" adopting "+name, func() bool {
		_, err := c.reg.Lookup(name)
		return err == nil
	})

	// The majority side serves the model within the contract even when
	// the ring places it on the partitioned node: proxy to a live owner
	// or local fallback, never an untyped 5xx.
	p := trainPipeline(t)
	instance := append([]float64(nil), p.Train.X[0]...)
	var ok200 int
	for i := 0; i < 20; i++ {
		st := &stack{srv: nodes[i%2].hs}
		resp, err := st.post("/v1/models/"+name+"/predict", map[string]any{"features": instance})
		if checkResponse(t, "predict-during-partition", resp, err) == 200 {
			ok200++
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ok200 == 0 {
		t.Fatal("majority side served no 200s with one node partitioned")
	}

	// The fleet health view on the majority side reports the partition.
	st := &stack{srv: a.hs}
	resp, err := st.get("/healthz")
	if code := checkResponse(t, "healthz-partition", resp, err); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
}
