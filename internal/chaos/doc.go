// Package chaos hosts the end-to-end fault-injection suite for the
// resilience plane: the full serving stack (registry, admission control,
// budgeted explainers, feeds) is exercised over a deliberately faulty
// store (registry.ChaosStore) and faulty telemetry feeds (feed.Fault),
// and the suite asserts the invariants the planes promise under failure —
// every response is either a valid (possibly degraded or partial) result
// or a typed 4xx/5xx, persistence failures never gate inference traffic,
// hot swaps never wedge, and no goroutine outlives its test.
//
// The package has no production code; it exists so `go test ./...` (and
// the CI chaos smoke step, which runs it under -race against a 20%%
// store error rate) picks the suite up as a first-class package.
package chaos
