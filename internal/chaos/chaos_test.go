package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/feed"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/registry"
	"nfvxai/internal/serve"
)

var (
	chaosPipeline     *core.Pipeline
	chaosPipelineOnce sync.Once
)

// trainPipeline trains one small forest pipeline shared by the suite.
func trainPipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	chaosPipelineOnce.Do(func() {
		ds, err := core.WebScenario().GenerateDataset(1, 1, telemetry.TargetBottleneckUtil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewPipeline(core.ModelForest, ds, 2)
		if err != nil {
			t.Fatal(err)
		}
		p.ShapSamples = 128
		chaosPipeline = p
	})
	return chaosPipeline
}

// stack is one serving stack over a fault-injected store:
// FSStore ← ChaosStore(errRate) ← RetryStore ← Registry ← Server.
type stack struct {
	reg       *registry.Registry
	chaos     *registry.ChaosStore
	s         *serve.Server
	srv       *httptest.Server
	storeErrs atomic.Int64
}

func newStack(t *testing.T, errRate float64, seed int64) *stack {
	t.Helper()
	fs, err := registry.OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st := &stack{}
	st.chaos = registry.NewChaosStore(fs, registry.ChaosConfig{ErrRate: errRate, Seed: seed})
	rs := registry.NewRetryStore(st.chaos, registry.RetryConfig{
		Seed:  seed,
		Sleep: func(time.Duration) {}, // no real backoff sleeps in tests
	})
	st.reg = registry.New()
	st.reg.OnStoreError = func(error) { st.storeErrs.Add(1) }
	st.reg.UseStore(rs)
	if _, err := st.reg.AddReady(registry.Spec{Name: "default"}, trainPipeline(t), time.Now()); err != nil {
		t.Fatal(err)
	}
	st.s = serve.NewServer(st.reg)
	st.srv = httptest.NewServer(st.s)
	t.Cleanup(func() {
		st.srv.Close()
		st.s.Close()
	})
	return st
}

func (st *stack) post(path string, body any) (*http.Response, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return http.Post(st.srv.URL+path, "application/json", bytes.NewReader(buf))
}

func (st *stack) get(path string) (*http.Response, error) {
	return http.Get(st.srv.URL + path)
}

// allowedStatus is the closed set of statuses the resilience plane may
// return under fault injection: success (possibly degraded/partial),
// client errors, or the typed overload/timeout family. Anything else —
// in particular a 500 from a panic or an unclassified store error
// leaking into serving — fails the suite.
var allowedStatus = map[int]bool{
	http.StatusOK:                 true,
	http.StatusAccepted:           true,
	http.StatusCreated:            true,
	http.StatusBadRequest:         true,
	http.StatusNotFound:           true,
	http.StatusConflict:           true,
	http.StatusTooManyRequests:    true,
	http.StatusServiceUnavailable: true,
	http.StatusGatewayTimeout:     true,
}

// checkResponse enforces the per-response invariants and returns the
// status code. Safe to call from worker goroutines (uses t.Errorf).
func checkResponse(t *testing.T, what string, resp *http.Response, err error) int {
	t.Helper()
	if err != nil {
		t.Errorf("%s: transport error: %v", what, err)
		return 0
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("%s: reading body: %v", what, err)
		return resp.StatusCode
	}
	if !allowedStatus[resp.StatusCode] {
		t.Errorf("%s: status %d outside the resilience contract (body %s)", what, resp.StatusCode, body)
		return resp.StatusCode
	}
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Errorf("%s: status %d with non-JSON body %q", what, resp.StatusCode, body)
	}
	return resp.StatusCode
}

// TestChaosServingInvariants hammers the budgeted serving plane with
// concurrent explains, predicts and health probes while every store
// operation fails 20%% of the time. Every response must satisfy the
// resilience contract; at least some explains must still succeed.
func TestChaosServingInvariants(t *testing.T) {
	st := newStack(t, 0.2, 42)
	p := trainPipeline(t)
	instance := append([]float64(nil), p.Train.X[0]...)

	const workers, rounds = 6, 8
	var ok200 atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0:
					resp, err := st.post("/v1/models/default/explain", map[string]any{
						"features":  instance,
						"method":    "kernelshap",
						"budget_ms": 200,
					})
					if checkResponse(t, "explain", resp, err) == http.StatusOK {
						ok200.Add(1)
					}
				case 1:
					resp, err := st.post("/v1/models/default/predict", map[string]any{
						"features": instance,
					})
					checkResponse(t, "predict", resp, err)
				case 2:
					resp, err := st.get("/healthz")
					checkResponse(t, "healthz", resp, err)
				case 3:
					resp, err := st.get("/readyz")
					checkResponse(t, "readyz", resp, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if ok200.Load() == 0 {
		t.Fatal("no explain succeeded under 20% store chaos; store faults must not gate inference")
	}
}

// TestChaosSwapNeverWedges hot-swaps the default model repeatedly while
// explains are in flight and every store write may fail. Swap must stay
// non-blocking and non-fatal (persistence errors route to OnStoreError),
// and the retrain count must land in /readyz.
func TestChaosSwapNeverWedges(t *testing.T) {
	st := newStack(t, 0.2, 7)
	p := trainPipeline(t)
	instance := append([]float64(nil), p.Train.X[0]...)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := st.post("/explain", map[string]any{"features": instance, "budget_ms": 200})
			checkResponse(t, "explain-during-swap", resp, err)
		}
	}()

	const swaps = 5
	for i := 0; i < swaps; i++ {
		if _, err := st.reg.Swap("default", p, time.Now()); err != nil {
			t.Fatalf("swap %d: %v (store chaos must never fail a swap)", i, err)
		}
	}
	close(stop)
	wg.Wait()

	resp, err := st.get("/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr serve.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Models) != 1 || rr.Models[0].Retrains != swaps {
		t.Fatalf("readyz models = %+v; want retrains %d surfaced", rr.Models, swaps)
	}
	if rr.Store == nil {
		t.Fatal("readyz must report store health when a RetryStore is attached")
	}
	if st.chaos.Injected() == 0 {
		t.Fatal("chaos store injected nothing; the test exercised no faults")
	}
}

// TestChaosTotalStoreOutage runs with a 100%% store error rate: every
// persistence attempt fails, the retry breaker opens, and yet inference
// keeps answering. Health must degrade (store state != ok) without the
// endpoints gating traffic.
func TestChaosTotalStoreOutage(t *testing.T) {
	st := newStack(t, 1.0, 3)
	p := trainPipeline(t)
	instance := append([]float64(nil), p.Train.X[0]...)

	// Hammer persistence until the breaker trips (default threshold 5
	// consecutive exhausted operations; each swap exhausts one).
	for i := 0; i < 6; i++ {
		if _, err := st.reg.Swap("default", p, time.Now()); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	if st.storeErrs.Load() == 0 {
		t.Fatal("no store errors reported under a total outage")
	}

	resp, err := st.post("/explain", map[string]any{"features": instance, "budget_ms": 500})
	if err != nil {
		t.Fatal(err)
	}
	if got := checkResponse(t, "explain-during-outage", resp, err); got != http.StatusOK {
		t.Fatalf("explain = %d during store outage; persistence must not gate inference", got)
	}

	resp, err = st.get("/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr serve.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Store == nil || rr.Store.State == registry.StoreStateOK {
		t.Fatalf("store health = %+v; a total outage must degrade store state", rr.Store)
	}
	if rr.Store.State == registry.StoreStateOpen && rr.Status != "degraded" {
		t.Fatalf("readyz status = %q with breaker open; want degraded", rr.Status)
	}
}

// TestChaosFeedFaults runs a simulated feed with injected stalls under
// store chaos, and checks the ingest path keeps returning typed 400s for
// malformed input rather than anything worse.
func TestChaosFeedFaults(t *testing.T) {
	st := newStack(t, 0.2, 11)

	resp, err := st.post("/v1/feeds", serve.FeedRequest{
		Name:     "chaotic",
		Scenario: "web-sfc",
		Rate:     86400,
		Seed:     3,
		Fault:    &feed.Fault{StallProb: 0.5, StallTicks: 2},
	})
	if got := checkResponse(t, "create-feed", resp, err); got != http.StatusCreated {
		t.Fatalf("create feed = %d want 201", got)
	}

	// Malformed JSON and empty batches stay typed 400s under chaos.
	r2, err := http.Post(st.srv.URL+"/v1/feeds/chaotic/records", "application/json",
		strings.NewReader("{not json"))
	if got := checkResponse(t, "ingest-malformed", r2, err); got != http.StatusBadRequest {
		t.Fatalf("malformed ingest = %d want 400", got)
	}
	r3, err := st.post("/v1/feeds/chaotic/records", serve.IngestRequest{})
	if got := checkResponse(t, "ingest-empty", r3, err); got != http.StatusBadRequest {
		t.Fatalf("empty ingest = %d want 400", got)
	}

	// The fault injector must actually fire: poll the feed stats until a
	// stall shows up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := st.get("/v1/feeds/chaotic")
		if err != nil {
			t.Fatal(err)
		}
		var fi serve.FeedInfo
		err = json.NewDecoder(resp.Body).Decode(&fi)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Stats.Stalls >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v; injected stalls never fired", fi.Stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosWarmStart restores a registry from a store whose reads fail
// half the time. The restore must never panic or wedge: it either
// returns a typed error (manifest unreadable after retries) or a report
// whose restored models are immediately servable.
func TestChaosWarmStart(t *testing.T) {
	dir := t.TempDir()
	fs, err := registry.OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the store cleanly (no chaos on the write path).
	seedReg := registry.New()
	seedReg.OnStoreError = func(err error) { t.Errorf("seeding store error: %v", err) }
	seedReg.UseStore(fs)
	if _, err := seedReg.AddReady(registry.Spec{Name: "default"}, trainPipeline(t), time.Now()); err != nil {
		t.Fatal(err)
	}

	// Warm-start through a 50% read-failure store. With the default four
	// retry attempts the per-operation failure probability is ~6%, so
	// most runs restore; either way the invariants below must hold.
	fs2, err := registry.OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cs := registry.NewChaosStore(fs2, registry.ChaosConfig{ErrRate: 0.5, Seed: 21})
	rs := registry.NewRetryStore(cs, registry.RetryConfig{
		Seed:             21,
		BreakerThreshold: 100, // keep the breaker out of this test's way
		Sleep:            func(time.Duration) {},
	})
	reg := registry.New()
	reg.OnStoreError = func(error) {}
	reg.UseStore(rs)

	rep, err := reg.WarmStart(time.Now())
	if err != nil {
		// Typed failure is acceptable; a wedged or panicking restore is not.
		t.Logf("warm start failed cleanly: %v", err)
	}
	for _, name := range rep.Models {
		if _, err := reg.Lookup(name); err != nil {
			t.Fatalf("restored model %q not servable: %v", name, err)
		}
	}
	for _, re := range rep.Errors {
		t.Logf("restore error (tolerated): %v", fmt.Errorf("%s: %w", re.Name, re.Err))
	}
	// A second restore attempt over the same faulty store must also
	// return (already-restored models land in Errors, not a deadlock).
	if _, err := reg.WarmStart(time.Now()); err != nil {
		t.Logf("second warm start failed cleanly: %v", err)
	}
	// The warm starts alone draw too few operations to guarantee an
	// injection; drive enough reads that a silent (never-injecting)
	// chaos store cannot pass the suite.
	for i := 0; i < 32; i++ {
		_, _, _ = cs.GetManifest()
	}
	if cs.Injected() == 0 {
		t.Fatal("chaos store injected nothing across warm starts and 32 reads")
	}
}
