// Serving: stand up the versioned multi-model explanation API in-process,
// train a second model through it at runtime, and drive every v1 endpoint
// the way an operator dashboard would (see API.md for the curl forms).
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"nfvxai/internal/registry"
	"nfvxai/internal/serve"
)

func main() {
	// 1. Train the startup model synchronously (a small web-scenario random
	//    forest) and register it as the default, exactly like
	//    `explaind -model web:rf:util:1`.
	spec, err := registry.ParseSpec("web:rf:util:1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training %s...\n", spec.Name)
	reg := registry.New()
	p, err := reg.BuildPipeline(spec)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := reg.AddReady(spec, p, time.Now()); err != nil {
		log.Fatal(err)
	}
	built := make(chan string, 1)
	reg.NotifyBuilds(built)
	srv := httptest.NewServer(serve.NewServer(reg))
	defer srv.Close()

	// 2. Grow the registry at runtime: POST /v1/models answers 202 and the
	//    NAT violation classifier trains in a background goroutine.
	fmt.Println("POST /v1/models → training nat/gbt/violation in the background")
	post(srv, "/v1/models", map[string]any{
		"scenario": "nat", "model": "gbt", "target": "violation", "hours": 1,
	})

	// 3. Meanwhile the default model serves. Batch-explain eight epochs in
	//    one request over the cached explainer.
	var batch struct {
		Method       string `json:"method"`
		Count        int    `json:"count"`
		Explanations []struct {
			Prediction    float64 `json:"prediction"`
			Contributions []struct {
				Feature string  `json:"feature"`
				Phi     float64 `json:"phi"`
			} `json:"contributions"`
		} `json:"explanations"`
	}
	post(srv, "/v1/models/web/rf/util/explain",
		map[string]any{"instances": p.Test.X[:8], "topk": 3}, &batch)
	fmt.Printf("batch explain: %d instances via %s; first: pred %.3f, top feature %s (φ %+.3f)\n",
		batch.Count, batch.Method,
		batch.Explanations[0].Prediction,
		batch.Explanations[0].Contributions[0].Feature,
		batch.Explanations[0].Contributions[0].Phi)

	// 3b. The explanation plane is pluggable per request: list the methods
	//     valid for this model, then explain the same epoch with LIME and
	//     compare faithfulness via "evaluate".
	var methods struct {
		DefaultMethod string `json:"default_method"`
		Explainers    []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"explainers"`
	}
	get(srv, "/v1/models/web/rf/util/explainers", &methods)
	fmt.Printf("explainers (default %s):", methods.DefaultMethod)
	for _, m := range methods.Explainers {
		fmt.Printf(" %s[%s]", m.Name, m.Kind)
	}
	fmt.Println()

	var compared struct {
		Method     string `json:"method"`
		Evaluation struct {
			AdditivityError float64 `json:"additivity_error"`
			DeletionAUC     float64 `json:"deletion_auc"`
		} `json:"evaluation"`
	}
	post(srv, "/v1/models/web/rf/util/explain", map[string]any{
		"features": p.Test.X[0], "evaluate": true,
	}, &compared)
	fmt.Printf("default %s: additivity err %.2e, deletion AUC %.4f\n",
		compared.Method, compared.Evaluation.AdditivityError, compared.Evaluation.DeletionAUC)
	post(srv, "/v1/models/web/rf/util/explain", map[string]any{
		"features": p.Test.X[0], "method": "lime",
		"params":   map[string]any{"samples": 500, "seed": 7},
		"evaluate": true,
	}, &compared)
	fmt.Printf("lime:            additivity err %.2e, deletion AUC %.4f\n",
		compared.Evaluation.AdditivityError, compared.Evaluation.DeletionAUC)

	// 3c. Expensive global work goes through the async jobs API: submit a
	//     global-importance job and poll it to completion.
	var job struct {
		ID       string  `json:"id"`
		Status   string  `json:"status"`
		Progress float64 `json:"progress"`
		Result   struct {
			Features []string  `json:"features"`
			Shap     []float64 `json:"shap"`
		} `json:"result"`
	}
	post(srv, "/v1/models/web/rf/util/jobs", map[string]any{"kind": "global-importance"}, &job)
	fmt.Printf("job %s submitted (%s)\n", job.ID, job.Status)
	for job.Status == "pending" || job.Status == "running" {
		time.Sleep(50 * time.Millisecond)
		get(srv, "/v1/jobs/"+job.ID, &job)
	}
	top, topV := "", 0.0
	for i, v := range job.Result.Shap {
		if v > topV {
			top, topV = job.Result.Features[i], v
		}
	}
	fmt.Printf("job %s %s: top global feature %s (mean |SHAP| %.4f)\n", job.ID, job.Status, top, topV)

	// 4. Wait for the background build, then list both live models.
	fmt.Printf("background build finished: %s\n", <-built)
	var list struct {
		Default string `json:"default"`
		Models  []struct {
			Name   string `json:"name"`
			Status string `json:"status"`
			Task   string `json:"task"`
		} `json:"models"`
	}
	get(srv, "/v1/models", &list)
	for _, m := range list.Models {
		def := ""
		if m.Name == list.Default {
			def = "  (default — legacy /predict etc. alias here)"
		}
		fmt.Printf("  %-20s %-8s %s%s\n", m.Name, m.Status, m.Task, def)
	}

	// 5. Query the freshly trained model from the same process.
	var health struct {
		Models int `json:"models"`
		Ready  int `json:"ready"`
	}
	get(srv, "/healthz", &health)
	fmt.Printf("healthz: %d/%d models ready — one process, many deployments\n", health.Ready, health.Models)
}

func post(srv *httptest.Server, path string, body any, out ...any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: status %d", path, resp.StatusCode)
	}
	if len(out) > 0 {
		if err := json.NewDecoder(resp.Body).Decode(out[0]); err != nil {
			log.Fatal(err)
		}
	}
}

func get(srv *httptest.Server, path string, out any) {
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
