// Clever Hans audit: demonstrate how attribution-based auditing catches a
// model that learned a telemetry artifact instead of the real signal.
// A debug counter that (in the historical training data only) leaks the
// target is injected; accuracy metrics on training data look excellent,
// the test score collapses, and the SHAP profile points straight at the
// artifact. Removing it and retraining restores generalization.
//
//	go run ./examples/cleverhans
package main

import (
	"context"
	"fmt"
	"log"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/telemetry"
)

func main() {
	ds, err := core.WebScenario().GenerateDataset(5, 8, telemetry.TargetBottleneckUtil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean telemetry dataset: %d epochs × %d features\n\n", ds.Len(), ds.NumFeatures())

	for _, strength := range []float64{0, 0.9} {
		res, err := core.CleverHansAudit(context.Background(), core.ModelForest, ds, strength, 21)
		if err != nil {
			log.Fatal(err)
		}
		label := "clean run (no artifact)"
		if strength > 0 {
			label = fmt.Sprintf("poisoned run (leak strength %.1f)", strength)
		}
		fmt.Printf("== %s ==\n", label)
		fmt.Printf("  train R²                 %.4f\n", res.TrainR2)
		fmt.Printf("  test  R²                 %.4f\n", res.TestR2)
		fmt.Printf("  artifact attribution rank %d of all features\n", res.ArtifactRank)
		fmt.Printf("  audit verdict:            detected=%v\n", res.Detected)
		fmt.Printf("  test R² after repair      %.4f\n\n", res.RepairedTestR2)
	}
	fmt.Println("takeaway: train/test metrics alone cannot tell you WHICH feature is")
	fmt.Println("spurious; the attribution profile names it, and removal repairs the model.")
}
