// Cluster: boot a three-node serving fleet in-process over one shared
// artifact store, train a model through node A's HTTP API, watch every
// node adopt it within a sync interval, route a request through a
// non-owner, then kill the owner and watch traffic re-route.
//
//	go run ./examples/cluster
//
// The same fleet as separate processes (one shared -store, identical
// membership everywhere):
//
//	PEERS="a=http://h1:8081,b=http://h2:8082,c=http://h3:8083"
//	explaind -addr :8081 -node-id a -peers "$PEERS" -store /shared/models
//	explaind -addr :8082 -node-id b -peers "$PEERS" -store /shared/models
//	explaind -addr :8083 -node-id c -peers "$PEERS" -store /shared/models
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"nfvxai/internal/cluster"
	"nfvxai/internal/registry"
	"nfvxai/internal/serve"
)

// fleetNode is one in-process cluster member: its own registry and
// server over the shared store directory.
type fleetNode struct {
	id  string
	reg *registry.Registry
	srv *serve.Server
	hs  *httptest.Server
	cl  *cluster.Cluster
	syn *cluster.Syncer
}

func main() {
	// 1. One shared artifact store — the only thing the nodes have in
	//    common. Models replicate through it, not through the peer links.
	dir, err := os.MkdirTemp("", "nfvxai-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 2. Boot three serving stacks, then join them into one ring:
	//    replication 2, fast probe/sync intervals for the demo.
	nodes := make([]*fleetNode, 3)
	for i := range nodes {
		id := string(rune('a' + i))
		st, err := registry.OpenFSStore(dir)
		if err != nil {
			log.Fatal(err)
		}
		reg := registry.New()
		reg.OnStoreError = func(err error) { log.Printf("store: %v", err) }
		reg.UseStore(registry.NewRetryStore(st, registry.RetryConfig{}))
		srv := serve.NewServer(reg)
		srv.NodeID = id
		nodes[i] = &fleetNode{id: id, reg: reg, srv: srv, hs: httptest.NewServer(srv)}
	}
	members := make([]cluster.Node, len(nodes))
	for i, nd := range nodes {
		members[i] = cluster.Node{ID: nd.id, URL: nd.hs.URL}
	}
	for _, nd := range nodes {
		c, err := cluster.New(cluster.Config{
			Self:          nd.id,
			Nodes:         members,
			Replication:   2,
			ProbeInterval: 200 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		nd.cl = c
		nd.syn = &cluster.Syncer{Reg: nd.reg, Interval: 300 * time.Millisecond}
		nd.srv.Cluster = c
		nd.srv.Syncer = nd.syn
		c.Start()
		nd.syn.Start()
		defer func(nd *fleetNode) { nd.syn.Stop(); nd.cl.Stop(); nd.hs.Close(); nd.srv.Close() }(nd)
	}
	a := nodes[0]
	fmt.Printf("fleet up: %s %s %s (replication 2, shared store %s)\n",
		nodes[0].hs.URL, nodes[1].hs.URL, nodes[2].hs.URL, dir)

	// 3. Train a model through node A's API — exactly like any
	//    single-node deployment. Persisting it into the shared store is
	//    what publishes it to the fleet.
	const name = "web/cart/util"
	fmt.Printf("POST %s/v1/models → training %s on node a\n", a.hs.URL, name)
	post(a.hs.URL+"/v1/models", map[string]any{
		"scenario": "web", "model": "cart", "target": "util", "hours": 1,
	})
	waitFor("node a to finish training", func() bool {
		_, err := a.reg.Lookup(name)
		return err == nil
	})

	// 4. Every other node adopts it from the shared manifest within one
	//    sync interval — no peer-to-peer model transfer.
	for _, nd := range nodes[1:] {
		nd := nd
		waitFor("node "+nd.id+" to adopt "+name, func() bool {
			_, err := nd.reg.Lookup(name)
			return err == nil
		})
		fmt.Printf("node %s adopted %s from the store\n", nd.id, name)
	}

	// 5. Ask a node that does NOT own the model: it reverse-proxies to
	//    an owner (one hop); X-Served-By names the node that actually
	//    answered, and the request id survives the hop.
	owned := map[string]bool{}
	for _, o := range a.cl.Owners(name) {
		owned[o.ID] = true
	}
	b := a
	for _, nd := range nodes {
		if !owned[nd.id] {
			b = nd
		}
	}
	fmt.Printf("ring places %s on %v; querying via non-owner %s\n", name, a.cl.Owners(name), b.id)
	sresp, err := http.Get(b.hs.URL + "/v1/models/" + name + "/schema")
	if err != nil {
		log.Fatal(err)
	}
	var schema serve.SchemaResponse
	if err := json.NewDecoder(sresp.Body).Decode(&schema); err != nil {
		log.Fatal(err)
	}
	sresp.Body.Close()
	features := make([]float64, len(schema.Features))
	for i := range features {
		features[i] = 0.3
	}
	body, err := json.Marshal(map[string]any{"features": features})
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, b.hs.URL+"/v1/models/"+name+"/predict",
		bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.HeaderRequestID, "walkthrough-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var pred struct {
		Prediction float64 `json:"prediction"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("predict via node %s → %d, prediction %.3f, served by %q, request id %q\n",
		b.id, resp.StatusCode, pred.Prediction,
		resp.Header.Get(serve.HeaderServedBy), resp.Header.Get(serve.HeaderRequestID))

	// 6. The fleet view: /healthz grows a cluster block with peers,
	//    ownership and sync lag.
	hresp, err := http.Get(a.hs.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	var health serve.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		log.Fatal(err)
	}
	hresp.Body.Close()
	fmt.Printf("healthz on a: node %s, %d peers", health.Cluster.NodeID, len(health.Cluster.Peers))
	for _, p := range health.Cluster.Peers {
		fmt.Printf(" [%s alive=%v]", p.ID, p.Alive)
	}
	fmt.Printf(", owners[%s]=%v, sync rounds %d\n", name, health.Cluster.Owners[name], health.Cluster.Sync.Rounds)

	// 7. Kill the node the querying node currently routes to. Probes mark it down and
	//    traffic re-routes to the surviving replica (or B's own synced
	//    copy) — requests keep answering.
	target, decision := b.cl.Route(name)
	var victim *fleetNode
	for _, nd := range nodes {
		if nd.id == target.ID {
			victim = nd
		}
	}
	if victim == nil || victim == b {
		victim = nodes[2] // the querier owns the model itself; kill any other member
	}
	fmt.Printf("killing node %s (%s's current route: %s via %s)\n", victim.id, b.id, target.ID, decision)
	victim.hs.CloseClientConnections()
	victim.hs.Close()
	waitFor("node "+b.id+" to mark "+victim.id+" down", func() bool {
		for _, p := range b.cl.Peers() {
			if p.ID == victim.id {
				return !p.Alive
			}
		}
		return false
	})
	resp2, err := http.Post(b.hs.URL+"/v1/models/"+name+"/predict", "application/json",
		bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp2.Body.Close()
	fmt.Printf("predict via node %s after the kill → %d, served by %q\n",
		b.id,
		resp2.StatusCode, resp2.Header.Get(serve.HeaderServedBy))
}

func post(url string, body any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %d", url, resp.StatusCode)
	}
}

func waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for %s", what)
}
