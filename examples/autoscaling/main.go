// Autoscaling: run a predictive ML autoscaler on a simulated day of
// diurnal traffic and explain every scaling decision it takes — the
// operator never has to trust an unexplained scale-up.
//
//	go run ./examples/autoscaling
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/orch"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/xai/shap"
)

func main() {
	scenario := core.WebScenario()

	// Train the forecast model on one historical day.
	fmt.Println("training next-epoch CPU forecaster on one simulated day...")
	ds, err := scenario.GenerateDataset(7, 24, telemetry.TargetBottleneckUtil)
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.NewPipeline(core.ModelForest, ds, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forecaster R² = %.3f\n\n", p.EvaluateRegression().R2)

	// Drive a fresh day with the predictive scaler.
	scaler := &orch.Predictive{Model: p.Model}
	world, handle, err := scenario.BuildWorld(1007, scaler)
	if err != nil {
		log.Fatal(err)
	}
	explainer := &shap.Kernel{
		Model:      p.Model,
		Background: shap.SampleBackground(rand.New(rand.NewSource(3)), p.Train.X, 40),
		NumSamples: 512,
	}

	explained := 0
	handle.OnEpoch(func(rec telemetry.Record) {
		n := len(handle.Decisions())
		if n == 0 || n == explained {
			return
		}
		explained = n
		dec := handle.Decisions()[n-1]
		fmt.Printf("[t=%6.0fs] scaling %s by %+d (%s)\n", rec.TimeSec, dec.Group, dec.Delta, dec.Reason)
		// Explain the forecast that triggered the decision.
		attr, err := explainer.Explain(context.Background(), scaler.LastFeatures)
		if err != nil {
			return
		}
		attr.Names = p.Train.Names
		for i, j := range attr.TopK(3) {
			fmt.Printf("    driver %d: %-20s phi=%+.3f\n", i+1, attr.Name(j), attr.Phi[j])
		}
	})

	fmt.Println("running one simulated day with the explainable autoscaler...")
	world.Run(24 * 3600)

	fmt.Printf("\nday summary: %d epochs, %d scaling decisions\n",
		handle.Tracker.Epochs(), len(handle.Decisions()))
	fmt.Printf("SLO violation rate: %.4f, mean cores: %.1f\n",
		handle.Tracker.ViolationRate(), handle.Tracker.CoreSeconds()/(24*3600))
}
