// SLA violation triage: train an SLO-violation classifier on a NAT edge
// chain, explain why an epoch is predicted to violate, and ask the
// counterfactual engine what would have to change to stay healthy.
//
//	go run ./examples/slaviolation
package main

import (
	"context"
	"fmt"
	"log"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/xai/counterfactual"
)

func main() {
	scenario := core.NATScenario()
	fmt.Printf("scenario %s, SLO %v\n", scenario.Name, scenario.SLO)

	ds, err := scenario.GenerateDataset(3, 24, telemetry.TargetViolation)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d epochs, violation base rate %.3f\n", ds.Len(), ds.ClassBalance())

	p, err := core.NewPipeline(core.ModelGBT, ds, 11)
	if err != nil {
		log.Fatal(err)
	}
	rep := p.EvaluateClassification()
	fmt.Printf("classifier: acc %.3f, F1 %.3f, AUC %.3f\n\n", rep.Accuracy, rep.F1, rep.AUC)

	// Find the most confident predicted violation in the test split.
	best, bestProb := -1, 0.0
	for i, x := range p.Test.X {
		if prob := p.Model.Predict(x); prob > bestProb {
			best, bestProb = i, prob
		}
	}
	if best < 0 || bestProb < 0.5 {
		fmt.Println("no predicted violations in this test split")
		return
	}
	x := p.Test.X[best]
	fmt.Printf("epoch with P(violation) = %.2f — why?\n", bestProb)
	attr, method, err := p.ExplainInstance(context.Background(), x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.OperatorReport("violation risk drivers", attr, method, 5))

	// Remediation: what is the smallest telemetry change that would bring
	// the violation probability under 30%? Time-of-day is immutable.
	target := counterfactual.Target{Op: "<=", Value: 0.3}
	cf, err := p.WhatIf(context.Background(), x, target, []string{"hour_sin", "hour_cos"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(core.WhatIfReport(cf, p.Train.Names, x, target))

	// Playbook rule: a reusable condition under which the model keeps
	// predicting a violation (anchor explanation).
	if _, rule, err := p.PlaybookRule(context.Background(), x, 0.9); err == nil {
		fmt.Println("\nplaybook condition for this verdict:")
		fmt.Println("  " + rule)
	}
}
