// Quickstart: simulate an NFV service chain, train a CPU-demand
// predictor, and explain one of its predictions.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/telemetry"
)

func main() {
	// 1. Simulate the canonical web service chain (firewall → IDS → load
	//    balancer) for four virtual hours and extract telemetry.
	scenario := core.WebScenario()
	ds, err := scenario.GenerateDataset(1 /* seed */, 4 /* hours */, telemetry.TargetBottleneckUtil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("telemetry dataset: %d epochs × %d features\n", ds.Len(), ds.NumFeatures())

	// 2. Train a random forest to predict the next epoch's bottleneck CPU
	//    utilization.
	p, err := core.NewPipeline(core.ModelForest, ds, 42)
	if err != nil {
		log.Fatal(err)
	}
	rep := p.EvaluateRegression()
	fmt.Printf("held-out accuracy: MAE %.4f, RMSE %.4f, R² %.4f\n\n", rep.MAE, rep.RMSE, rep.R2)

	// 3. Explain the prediction for one test epoch: which telemetry
	//    signals push the forecast up or down?
	x := p.Test.X[0]
	attr, method, err := p.ExplainInstance(context.Background(), x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.OperatorReport("why is the CPU forecast what it is?", attr, method, 5))

	// 4. Global view: which features matter across the whole test set?
	shapImp, _, err := p.GlobalImportance(context.Background(), 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nglobal importance (mean |SHAP| over 30 epochs):")
	fmt.Print(core.ImportanceTable(ds.Names, shapImp, 8))

	// 5. Sanity: does the model respond to offered load the way queueing
	//    physics requires (more load → more CPU)?
	checks, err := p.SanityChecks()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(core.SanityReport(checks))
}
