// Command nfvxai runs the paper's experiment suite and prints each table
// and figure as text. It is the one-stop reproduction entry point:
//
//	nfvxai -exp all                 # every table and figure (full size)
//	nfvxai -exp t1,f4 -hours 4      # selected experiments, reduced size
//	nfvxai -list                    # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nfvxai/internal/core"
)

type experiment struct {
	id, desc string
	run      func(core.ExpConfig) (fmt.Stringer, error)
}

func wrap[T fmt.Stringer](fn func(core.ExpConfig) (T, error)) func(core.ExpConfig) (fmt.Stringer, error) {
	return func(cfg core.ExpConfig) (fmt.Stringer, error) {
		res, err := fn(cfg)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}

func experiments() []experiment {
	return []experiment{
		{"t1", "Table 1: VNF CPU prediction accuracy", wrap(core.Table1ModelAccuracy)},
		{"t2", "Table 2: SLO violation classification", wrap(core.Table2ViolationClassifiers)},
		{"t3", "Table 3: explanation fidelity", wrap(core.Table3ExplanationFidelity)},
		{"t4", "Table 4: counterfactual remediation", wrap(core.Table4Counterfactuals)},
		{"f1", "Figure 1: global feature importance", wrap(core.Figure1GlobalImportance)},
		{"f2", "Figure 2: explanation latency", wrap(core.Figure2ExplanationLatency)},
		{"f3", "Figure 3: deletion curves", wrap(core.Figure3DeletionCurve)},
		{"f4", "Figure 4: Clever Hans audit", wrap(core.Figure4CleverHans)},
		{"f5", "Figure 5: attribution stability", wrap(core.Figure5Stability)},
		{"f6", "Figure 6: autoscaling outcomes", wrap(core.Figure6Autoscaling)},
	}
}

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		hours   = flag.Float64("hours", 24, "virtual hours of telemetry per dataset")
		seed    = flag.Int64("seed", 1, "global seed")
		explain = flag.Int("explained", 100, "instances explained per experiment")
		samples = flag.Int("shap-samples", 1024, "KernelSHAP coalition budget")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	all := experiments()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.id, e.desc)
		}
		return
	}
	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	cfg := core.ExpConfig{
		SimHours:    *hours,
		Seed:        *seed,
		Explained:   *explain,
		ShapSamples: *samples,
	}
	ran := 0
	for _, e := range all {
		if *exp != "all" && !want[e.id] {
			continue
		}
		ran++
		fmt.Printf("### %s — %s\n", e.id, e.desc)
		start := time.Now()
		res, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("(%s in %.1fs)\n\n", e.id, time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q (use -list)\n", *exp)
		os.Exit(2)
	}
}
