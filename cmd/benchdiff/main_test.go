package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestAuditHistoryCleanAndRegressed(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "BENCH_PR1.json"), `{
		"pr": 1,
		"results": [{"pair": "batch predict", "batched_ns_op": 1000, "speedup": 4.0}]
	}`)
	// Within threshold: +5% ns/op, -5% speedup.
	writeFile(t, filepath.Join(dir, "BENCH_PR2.json"), `{
		"pr": 2,
		"results": [{"pair": "batch predict", "batched_ns_op": 1050, "speedup": 3.8}]
	}`)
	regs, err := auditHistory(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("clean history flagged: %v", regs)
	}

	// A later record regresses both conventions and breaks a bound.
	writeFile(t, filepath.Join(dir, "BENCH_PR3.json"), `{
		"pr": 3,
		"results": [
			{"pair": "batch predict", "batched_ns_op": 2000, "speedup": 2.0},
			{"pair": "explain tail", "p99_within_bound": false}
		]
	}`)
	regs, err = auditHistory(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 3 {
		t.Fatalf("regressions = %v, want ns_op + speedup + bound", regs)
	}
	// The pair compares against its most recent occurrence (PR2), not PR1.
	for _, r := range regs {
		if strings.Contains(r, "BENCH_PR1") {
			t.Fatalf("compared against stale occurrence: %q", r)
		}
	}
}

func TestAuditHistoryDisjointPairsPass(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "BENCH_PR1.json"),
		`{"pr": 1, "results": [{"pair": "a", "x_ns_op": 10}]}`)
	writeFile(t, filepath.Join(dir, "BENCH_PR2.json"),
		`{"pr": 2, "results": [{"pair": "b", "y_ns_op": 99999}]}`)
	regs, err := auditHistory(dir, 10)
	if err != nil || len(regs) != 0 {
		t.Fatalf("disjoint pairs: regs=%v err=%v", regs, err)
	}
}

func TestDiffBenchOutput(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.txt")
	newP := filepath.Join(dir, "new.txt")
	writeFile(t, oldP, `
goos: linux
BenchmarkPredict-8   	1000	      1000 ns/op	     120 B/op
BenchmarkExplain-8   	 100	     50000 ns/op
`)
	writeFile(t, newP, `
BenchmarkPredict-4   	1000	      1050 ns/op
BenchmarkExplain-4   	 100	     80000 ns/op
BenchmarkNewThing-4  	 100	    999999 ns/op
`)
	regs, err := diffBenchOutput(oldP, newP, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Predict +5% passes; Explain +60% fails; NewThing is informational.
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkExplain") {
		t.Fatalf("regressions = %v", regs)
	}
}

func TestParseBenchOutputAveragesCounts(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "b.txt")
	writeFile(t, p, `
BenchmarkX-8 100 1000 ns/op
BenchmarkX-8 100 3000 ns/op
`)
	m, err := parseBenchOutput(p)
	if err != nil {
		t.Fatal(err)
	}
	if m["BenchmarkX"].ns != 2000 {
		t.Fatalf("average = %v", m["BenchmarkX"].ns)
	}
	if m["BenchmarkX"].hasMemory {
		t.Fatal("no -benchmem columns, hasMemory should be false")
	}
}

func TestDiffBenchOutputAllocs(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.txt")
	newP := filepath.Join(dir, "new.txt")
	// ns/op steady everywhere; allocs/op move. Steady loses its zero,
	// Grown regresses past threshold, Wobble stays within it, NoMem has
	// no -benchmem columns on one side so allocs are not compared.
	writeFile(t, oldP, `
BenchmarkSteady-8   1000   1000 ns/op     0 B/op    0 allocs/op
BenchmarkGrown-8    1000   1000 ns/op   800 B/op   10 allocs/op
BenchmarkWobble-8   1000   1000 ns/op   800 B/op   10 allocs/op
BenchmarkNoMem-8    1000   1000 ns/op
`)
	writeFile(t, newP, `
BenchmarkSteady-8   1000   1000 ns/op    64 B/op    2 allocs/op
BenchmarkGrown-8    1000   1000 ns/op   800 B/op   15 allocs/op
BenchmarkWobble-8   1000   1000 ns/op   800 B/op   11 allocs/op
BenchmarkNoMem-8    1000   1000 ns/op   999 B/op   99 allocs/op
`)
	regs, err := diffBenchOutput(oldP, newP, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want Steady (lost zero) + Grown (+50%%)", regs)
	}
	joined := strings.Join(regs, "\n")
	for _, want := range []string{"BenchmarkSteady", "BenchmarkGrown", "allocs/op"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("regressions %v missing %q", regs, want)
		}
	}
}

func TestAuditHistoryAllocsOp(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "BENCH_PR1.json"),
		`{"pr": 1, "results": [{"pair": "kshap", "explain_allocs_op": 6}]}`)
	writeFile(t, filepath.Join(dir, "BENCH_PR2.json"),
		`{"pr": 2, "results": [{"pair": "kshap", "explain_allocs_op": 57}]}`)
	regs, err := auditHistory(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "explain_allocs_op") {
		t.Fatalf("regressions = %v, want one explain_allocs_op regression", regs)
	}
}
