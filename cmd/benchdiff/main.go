// Command benchdiff is the bench-regression gate: it fails (exit 1)
// when performance numbers move the wrong way by more than a threshold.
// It runs in two modes.
//
// History mode (the CI gate) audits the repo's committed BENCH_*.json
// records:
//
//	benchdiff -history .            # compare BENCH_*.json across PRs
//	benchdiff -history . -threshold 5
//
// Records are ordered by their "pr" field. For every results[] entry
// sharing the same "pair" string across two records, the later record
// must not regress against the earlier one:
//
//   - any shared numeric "*_ns_op" field increasing by more than
//     -threshold percent fails (lower is better);
//   - any shared numeric "*_allocs_op" field increasing by more than
//     -threshold percent fails (lower is better) — the zero-alloc
//     kernel-plane work is gated the same way latency is;
//   - a shared "speedup" field dropping by more than -threshold percent
//     fails (higher is better);
//   - independent of any comparison, a recorded "p99_within_bound":
//     false fails outright — a committed bench record must not document
//     a broken latency bound.
//
// Two-file mode diffs raw `go test -bench` outputs, for local before/
// after runs:
//
//	go test -bench . -count 1 ./internal/ml > old.txt
//	# ... make changes ...
//	go test -bench . -count 1 ./internal/ml > new.txt
//	benchdiff old.txt new.txt
//
// Benchmarks present in both files compare by ns/op — and, when both
// runs carried -benchmem, by allocs/op — with an increase beyond
// -threshold percent failing either way. Benchmarks appearing or
// disappearing are reported but never fail the gate (new benches land
// with new code).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		history   = flag.String("history", "", "directory of BENCH_*.json records to audit (history mode)")
		threshold = flag.Float64("threshold", 10, "max tolerated regression, percent")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff -history DIR [-threshold PCT]\n"+
				"       benchdiff [-threshold PCT] OLD.txt NEW.txt\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var regressions []string
	var err error
	switch {
	case *history != "":
		regressions, err = auditHistory(*history, *threshold)
	case flag.NArg() == 2:
		regressions, err = diffBenchOutput(flag.Arg(0), flag.Arg(1), *threshold)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Println("REGRESSION:", r)
		}
		fmt.Printf("benchdiff: %d regression(s) beyond %.0f%%\n", len(regressions), *threshold)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

// benchRecord is one committed BENCH_PRn.json file. Results stay as raw
// maps: each PR's bench records its own fields, and the gate keys off
// naming conventions (pair, *_ns_op, speedup, p99_within_bound) rather
// than a fixed schema.
type benchRecord struct {
	PR      int              `json:"pr"`
	Title   string           `json:"title"`
	Results []map[string]any `json:"results"`
	path    string
}

// auditHistory loads every BENCH_*.json under dir and checks the
// regression rules across PR order.
func auditHistory(dir string, threshold float64) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json under %s", dir)
	}
	var recs []benchRecord
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var r benchRecord
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		r.path = filepath.Base(p)
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].PR < recs[j].PR })

	var regressions []string
	// Latest-seen occurrence of each pair, in PR order, so each record
	// compares against the most recent earlier measurement of that pair.
	type seen struct {
		rec    benchRecord
		result map[string]any
	}
	last := map[string]seen{}
	for _, rec := range recs {
		for _, res := range rec.Results {
			pair, _ := res["pair"].(string)
			if b, ok := res["p99_within_bound"].(bool); ok && !b {
				regressions = append(regressions,
					fmt.Sprintf("%s: %q records p99_within_bound=false", rec.path, pair))
			}
			if pair == "" {
				continue
			}
			if prev, ok := last[pair]; ok {
				regressions = append(regressions,
					comparePair(prev.rec.path, prev.result, rec.path, res, pair, threshold)...)
			}
			last[pair] = seen{rec, res}
		}
		fmt.Printf("audited %s (PR %d, %d result(s))\n", rec.path, rec.PR, len(rec.Results))
	}
	return regressions, nil
}

// comparePair applies the field conventions between two measurements of
// the same pair string.
func comparePair(oldPath string, old map[string]any, newPath string, cur map[string]any, pair string, threshold float64) []string {
	var out []string
	for k, v := range cur {
		nv, ok := toFloat(v)
		if !ok {
			continue
		}
		ov, ok := toFloat(old[k])
		if !ok || ov == 0 {
			continue
		}
		switch {
		case strings.HasSuffix(k, "_ns_op"), strings.HasSuffix(k, "_allocs_op"):
			if pct := (nv - ov) / ov * 100; pct > threshold {
				out = append(out, fmt.Sprintf("%s vs %s: %q %s %.4g -> %.4g (+%.1f%%)",
					newPath, oldPath, pair, k, ov, nv, pct))
			}
		case k == "speedup":
			if pct := (ov - nv) / ov * 100; pct > threshold {
				out = append(out, fmt.Sprintf("%s vs %s: %q speedup %.3g -> %.3g (-%.1f%%)",
					newPath, oldPath, pair, ov, nv, pct))
			}
		}
	}
	return out
}

func toFloat(v any) (float64, bool) {
	f, ok := v.(float64) // encoding/json decodes every JSON number as float64
	return f, ok
}

// benchStat is one benchmark's averaged measurements from a -bench run.
// allocs/op (and B/op, informational) are present only when the run
// carried -benchmem.
type benchStat struct {
	ns        float64
	bytes     float64
	allocs    float64
	hasMemory bool
}

// diffBenchOutput compares two `go test -bench` text outputs by ns/op
// and — when both runs carry -benchmem columns — by allocs/op.
func diffBenchOutput(oldPath, newPath string, threshold float64) ([]string, error) {
	old, err := parseBenchOutput(oldPath)
	if err != nil {
		return nil, err
	}
	cur, err := parseBenchOutput(newPath)
	if err != nil {
		return nil, err
	}
	if len(cur) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines", newPath)
	}
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	for _, name := range names {
		nv := cur[name]
		ov, ok := old[name]
		if !ok {
			fmt.Printf("%-60s new (%.4g ns/op)\n", name, nv.ns)
			continue
		}
		pct := (nv.ns - ov.ns) / ov.ns * 100
		line := fmt.Sprintf("%-60s %.4g -> %.4g ns/op (%+.1f%%)", name, ov.ns, nv.ns, pct)
		if pct > threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.4g -> %.4g ns/op (+%.1f%%)", name, ov.ns, nv.ns, pct))
		}
		if ov.hasMemory && nv.hasMemory {
			line += fmt.Sprintf("  %.4g -> %.4g allocs/op", ov.allocs, nv.allocs)
			// A benchmark that allocated nothing before must stay at zero;
			// otherwise the percent rule applies, exactly like ns/op.
			switch {
			case ov.allocs == 0 && nv.allocs > 0:
				regressions = append(regressions,
					fmt.Sprintf("%s: 0 -> %.4g allocs/op (was allocation-free)", name, nv.allocs))
			case ov.allocs > 0:
				if apct := (nv.allocs - ov.allocs) / ov.allocs * 100; apct > threshold {
					regressions = append(regressions,
						fmt.Sprintf("%s: %.4g -> %.4g allocs/op (+%.1f%%)", name, ov.allocs, nv.allocs, apct))
				}
			}
		}
		fmt.Println(line)
	}
	for name := range old {
		if _, ok := cur[name]; !ok {
			fmt.Printf("%-60s removed\n", name)
		}
	}
	return regressions, nil
}

// parseBenchOutput pulls "BenchmarkX-N  iters  ns ns/op [B B/op allocs
// allocs/op]" lines out of go test output, averaging repeated -count
// runs. The -N GOMAXPROCS suffix is stripped so runs from different
// machines still line up.
func parseBenchOutput(path string) (map[string]benchStat, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sums := map[string]*benchStat{}
	counts := map[string]int{}
	memCounts := map[string]int{}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var st benchStat
		found := false
		for i := 2; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/op":
				st.ns, found = v, true
			case "B/op":
				st.bytes = v
			case "allocs/op":
				st.allocs = v
				st.hasMemory = true
			}
		}
		if !found {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		agg := sums[name]
		if agg == nil {
			agg = &benchStat{}
			sums[name] = agg
		}
		agg.ns += st.ns
		agg.bytes += st.bytes
		agg.allocs += st.allocs
		counts[name]++
		if st.hasMemory {
			memCounts[name]++
		}
	}
	out := make(map[string]benchStat, len(sums))
	for name, agg := range sums {
		n := float64(counts[name])
		out[name] = benchStat{
			ns:        agg.ns / n,
			bytes:     agg.bytes / n,
			allocs:    agg.allocs / n,
			hasMemory: memCounts[name] == counts[name],
		}
	}
	return out, nil
}
