// Command experiment runs a declarative scenario×model×method sweep
// locally — the CLI twin of POST /v1/experiments — and renders the
// paper-style comparison table.
//
// The sweep is either a JSON ExperimentSpec file:
//
//	experiment -spec sweep.json -out matrix.json
//
// or assembled from flags:
//
//	experiment -scenarios web,nat -models linear,rf,mlp \
//	    -methods kernelshap,lime -targets util -hours 2 -seed 1
//
// The spec compiles into a dependency-aware plan (one dataset per
// scenario×target, one trained pipeline per scenario×target×model, one
// evaluation cell per pipeline×method) executed with bounded parallelism;
// progress streams to stderr. Each cell reports mean additivity error,
// deletion AUC, deletion gap vs random orderings (faithfulness) and
// latency per explanation. The matrix writes to -out as JSON and, with
// -store DIR, persists into the shared artifact store where a running
// explaind serves it via GET /v1/experiments/{id}.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"nfvxai/internal/core"
	"nfvxai/internal/experiment"
	"nfvxai/internal/registry"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "JSON ExperimentSpec file ('' = build from flags)")
		name      = flag.String("name", "cli-sweep", "experiment name (store key)")
		scenarios = flag.String("scenarios", "web,nat", "comma-separated scenario names")
		models    = flag.String("models", "linear,cart,rf", "comma-separated model kinds (linear|cart|rf|gbt|mlp)")
		methods   = flag.String("methods", "kernelshap,treeshap", "comma-separated local explanation methods")
		targets   = flag.String("targets", "util", "comma-separated targets (util|latency|violation)")
		hours     = flag.Float64("hours", 2, "virtual telemetry hours per dataset")
		seed      = flag.Int64("seed", 1, "seed (equal spec+seed reproduce equal metrics)")
		samples   = flag.Int("samples", 8, "test instances explained per cell")
		shapS     = flag.Int("shap-samples", 256, "stochastic explainer budget")
		workers   = flag.Int("workers", 0, "parallel plan units (0 = NumCPU)")
		out       = flag.String("out", "", "write the result matrix JSON here")
		storeDir  = flag.String("store", "", "also persist the matrix into this artifact store")
		quiet     = flag.Bool("quiet", false, "suppress the progress stream")
	)
	flag.Parse()

	var sp experiment.Spec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(data, &sp); err != nil {
			log.Fatalf("parsing %s: %v", *specPath, err)
		}
	} else {
		sp = experiment.Spec{
			Name:        *name,
			Scenarios:   splitList(*scenarios),
			Models:      splitList(*models),
			Methods:     splitList(*methods),
			Targets:     splitList(*targets),
			Hours:       *hours,
			Seed:        *seed,
			Samples:     *samples,
			ShapSamples: *shapS,
			Workers:     *workers,
		}
	}
	sp = sp.WithDefaults()
	catalog := core.NewScenarioRegistry()
	if err := sp.Validate(catalog); err != nil {
		log.Fatal(err)
	}
	log.Printf("experiment %q: %d cells (%d scenarios × %d targets × %d models × %d methods), %d workers",
		sp.Name, sp.Cells(), len(sp.Scenarios), len(sp.Targets), len(sp.Models), len(sp.Methods), sp.Workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runner := experiment.Runner{Scenarios: catalog}
	progress := func(f float64) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\rprogress %5.1f%%", 100*f)
		}
	}
	m, err := runner.Run(ctx, sp, progress)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(m.Table())
	fmt.Printf("sweep: %d cells in %.1fs (%.1f cells/min)\n",
		len(m.Cells), m.ElapsedSec, float64(len(m.Cells))/m.ElapsedSec*60)

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("matrix written to %s", *out)
	}
	if *storeDir != "" {
		st, err := registry.OpenFSStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		if err := st.PutExperiment(sp.Name, data); err != nil {
			log.Fatal(err)
		}
		log.Printf("matrix persisted to store %s as %q", *storeDir, sp.Name)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
