// Command datagen runs an NFV scenario and writes the extracted telemetry
// dataset as CSV — the repository's equivalent of "collect a testbed
// trace" for offline experimentation.
//
//	datagen -scenario web -target util -hours 24 -seed 1 -o web.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"nfvxai/internal/core"
	"nfvxai/internal/dataset"
	"nfvxai/internal/nfv/telemetry"
)

func main() {
	var (
		scenario = flag.String("scenario", "web", "scenario: web | nat")
		target   = flag.String("target", "util", "target: util | latency | violation")
		hours    = flag.Float64("hours", 24, "virtual hours to simulate")
		seed     = flag.Int64("seed", 1, "traffic seed")
		out      = flag.String("o", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	var sc core.Scenario
	switch *scenario {
	case "web":
		sc = core.WebScenario()
	case "nat":
		sc = core.NATScenario()
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q (web|nat)\n", *scenario)
		os.Exit(2)
	}
	var kind telemetry.TargetKind
	switch *target {
	case "util":
		kind = telemetry.TargetBottleneckUtil
	case "latency":
		kind = telemetry.TargetChainLatency
	case "violation":
		kind = telemetry.TargetViolation
	default:
		fmt.Fprintf(os.Stderr, "unknown target %q (util|latency|violation)\n", *target)
		os.Exit(2)
	}

	ds, err := sc.GenerateDataset(*seed, *hours, kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, ds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows × %d features (%s, %s)\n",
		ds.Len(), ds.NumFeatures(), sc.Name, *target)
}
