// Command datagen runs an NFV scenario and writes the extracted telemetry
// dataset as CSV — the repository's equivalent of "collect a testbed
// trace" for offline experimentation.
//
//	datagen -scenario web -target util -hours 24 -seed 1 -o web.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"nfvxai/internal/core"
	"nfvxai/internal/dataset"
	"nfvxai/internal/registry"
)

func main() {
	var (
		scenario = flag.String("scenario", "web", "registered scenario name or alias (builtin: web | nat)")
		target   = flag.String("target", "util", "target: util | latency | violation")
		hours    = flag.Float64("hours", 24, "virtual hours to simulate")
		seed     = flag.Int64("seed", 1, "traffic seed")
		out      = flag.String("o", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	sc, err := core.NewScenarioRegistry().Scenario(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kind, err := registry.TargetFor(*target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ds, err := sc.GenerateDataset(*seed, *hours, kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, ds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows × %d features (%s, %s)\n",
		ds.Len(), ds.NumFeatures(), sc.Name, *target)
}
