// Command nfvlint is the repo's multichecker: it runs the custom
// analyzers in internal/analysis/... over the module and exits non-zero
// on any finding. It is a CI gate (see .github/workflows/ci.yml) and a
// local pre-commit check:
//
//	go run ./cmd/nfvlint ./...          # whole module
//	go run ./cmd/nfvlint ./internal/... # subtree
//	go run ./cmd/nfvlint -list          # analyzer catalogue
//
// Suppress a single finding with a justified directive on (or directly
// above) the offending line:
//
//	//lint:allow ctxcancel loop is bounded by len(batch) ≤ 8
//
// The framework and the invariants each analyzer enforces are documented
// in internal/analysis and CONTRIBUTING.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nfvxai/internal/analysis"
	"nfvxai/internal/analysis/boundedmake"
	"nfvxai/internal/analysis/ctxcancel"
	"nfvxai/internal/analysis/errcmp"
	"nfvxai/internal/analysis/lockedcall"
	"nfvxai/internal/analysis/poolalloc"
	"nfvxai/internal/analysis/seededrand"
)

var all = []*analysis.Analyzer{
	boundedmake.Analyzer,
	ctxcancel.Analyzer,
	errcmp.Analyzer,
	lockedcall.Analyzer,
	poolalloc.Analyzer,
	seededrand.Analyzer,
}

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	testsFlag := flag.Bool("tests", false, "also analyze in-package _test.go files")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nfvlint [flags] [patterns]\n\npatterns are package dirs relative to the module root (default ./...)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}

	analyzers := all
	if *onlyFlag != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*onlyFlag, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "nfvlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	modPath, err := analysis.ModuleInfo(root)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader(root, modPath)
	loader.IncludeTests = *testsFlag
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fatal(err)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		// Print module-relative paths so output is stable across machines.
		if rel, err := filepath.Rel(root, f.Position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Position.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "nfvlint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("nfvlint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nfvlint:", err)
	os.Exit(2)
}
