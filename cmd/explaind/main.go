// Command explaind serves a trained NFV predictor with its explanations
// over HTTP (see internal/serve for the API). On startup it simulates the
// chosen scenario, trains the model, and listens.
//
//	explaind -addr :8080 -scenario web -model rf -hours 24
//
// Endpoints: GET /healthz /schema /importance; POST /predict /explain /whatif.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		scenario = flag.String("scenario", "web", "scenario: web | nat")
		model    = flag.String("model", "rf", "model: linear | cart | rf | gbt | mlp")
		target   = flag.String("target", "util", "target: util | latency | violation")
		hours    = flag.Float64("hours", 24, "virtual hours of training telemetry")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	var sc core.Scenario
	switch *scenario {
	case "web":
		sc = core.WebScenario()
	case "nat":
		sc = core.NATScenario()
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	var kind telemetry.TargetKind
	switch *target {
	case "util":
		kind = telemetry.TargetBottleneckUtil
	case "latency":
		kind = telemetry.TargetChainLatency
	case "violation":
		kind = telemetry.TargetViolation
	default:
		fmt.Fprintf(os.Stderr, "unknown target %q\n", *target)
		os.Exit(2)
	}
	var mk core.ModelKind
	switch *model {
	case "linear":
		mk = core.ModelLinear
	case "cart":
		mk = core.ModelTree
	case "rf":
		mk = core.ModelForest
	case "gbt":
		mk = core.ModelGBT
	case "mlp":
		mk = core.ModelMLP
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}

	log.Printf("simulating %s for %.0fh of telemetry...", sc.Name, *hours)
	ds, err := sc.GenerateDataset(*seed, *hours, kind)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("training %s on %d rows × %d features...", *model, ds.Len(), ds.NumFeatures())
	p, err := core.NewPipeline(mk, ds, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if ds.Task.String() == "regression" {
		rep := p.EvaluateRegression()
		log.Printf("test MAE %.4f RMSE %.4f R2 %.4f", rep.MAE, rep.RMSE, rep.R2)
	} else {
		rep := p.EvaluateClassification()
		log.Printf("test acc %.4f F1 %.4f AUC %.4f", rep.Accuracy, rep.F1, rep.AUC)
	}
	log.Printf("explaind listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, serve.New(p)))
}
