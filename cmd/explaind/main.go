// Command explaind serves a registry of trained NFV predictors with their
// explanations over the versioned HTTP API (see internal/serve and API.md).
// Each -model flag names one scenario:model:target[:hours] combination;
// the flag repeats, so one process hosts many deployments concurrently:
//
//	explaind -addr :8080 -model web:rf:util -model nat:gbt:violation:6 -feed live:web
//
// The first spec trains synchronously before the listener starts and
// becomes the default model behind the legacy unversioned endpoints
// (override with -default); the rest train asynchronously in the
// background and hot-swap in when ready — exactly like models added at
// runtime via POST /v1/models.
//
// v1 endpoints:
//
//	GET  /v1/models                    GET  /v1/models/{name}
//	POST /v1/models                    GET  /v1/models/{name}/schema
//	POST /v1/models/{name}/predict     GET  /v1/models/{name}/importance
//	POST /v1/models/{name}/explain     POST /v1/models/{name}/whatif
//	GET  /v1/models/{name}/explainers  POST /v1/models/{name}/jobs
//	GET  /v1/models/{name}/stream      (SSE over a feed)
//	GET  /v1/jobs  /v1/jobs/{id}       DELETE /v1/jobs/{id}
//	GET/POST /v1/scenarios             GET /v1/scenarios/{name}
//	GET/POST /v1/feeds                 GET/DELETE /v1/feeds/{name}
//	POST /v1/feeds/{name}/records      POST /v1/feeds/{name}/attach
//	GET  /v1/models/{name}/artifact    POST /v1/models/import
//	GET/POST /v1/experiments           GET /v1/experiments/{id}
//
// Explain requests may select any registered explanation method per
// request ("method" + "params" in the body; see API.md); expensive global
// explanations (global-importance, pdp-grid, surrogate-tree,
// cleverhans-audit) and streaming retrains run asynchronously through the
// jobs API with progress, results and cancellation.
//
// Each -feed name:scenario[:rate] flag starts a live simulated telemetry
// feed at boot, equivalent to POST /v1/feeds; models attach to feeds for
// online drift monitoring via POST /v1/feeds/{name}/attach.
//
// With -store DIR the process is restartable: trained (and retrained)
// pipelines persist as content-addressed artifacts under DIR, and the
// next boot warm-starts them from disk — bit-identical predictions, no
// retraining. Model artifacts also move between processes over HTTP via
// GET /v1/models/{name}/artifact and POST /v1/models/import, and
// POST /v1/experiments runs declarative scenario×model×method sweeps
// whose result matrices persist in the store. If the initial training of
// any -model flag fails (synchronous or background), explaind logs the
// cause and exits non-zero instead of serving a permanently failed
// model.
//
// With -node-id and -peers (or -peers-file), several explaind processes
// sharing one -store form a serving cluster: a seeded consistent-hash
// ring assigns each model to -replication owner nodes, any node proxies
// /v1/models/{name}/* requests to the owner (falling back to its own
// synced copy when every owner is down), and a manifest-watch loop
// (-sync-interval) pulls models trained or retrained on other nodes out
// of the shared store. /healthz reports ring ownership, peer liveness
// and sync lag; every response names the answering node in X-Served-By
// and carries an X-Request-Id for cross-node tracing:
//
//	explaind -addr :8081 -node-id a -peers "a=http://h1:8081,b=http://h2:8081,c=http://h3:8081" -store /shared
//
// The process shuts down gracefully: SIGINT/SIGTERM stop the listener
// (draining in-flight requests with a timeout), then cancel running jobs
// and stop feed goroutines.
//
// Legacy aliases onto the default model: GET /healthz /schema /importance;
// POST /predict /explain /whatif.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nfvxai/internal/cluster"
	"nfvxai/internal/dataset"
	"nfvxai/internal/feed"
	"nfvxai/internal/mat"
	"nfvxai/internal/registry"
	"nfvxai/internal/sched"
	"nfvxai/internal/serve"
	"nfvxai/internal/xai/xcache"
)

// stringList collects repeated -model / -feed flags.
type stringList []string

func (l *stringList) String() string { return fmt.Sprint(*l) }

func (l *stringList) Set(s string) error {
	*l = append(*l, s)
	return nil
}

// shutdownTimeout bounds how long in-flight requests may drain after a
// termination signal before the listener is torn down anyway.
const shutdownTimeout = 10 * time.Second

func main() {
	var raw, rawFeeds stringList
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		defName  = flag.String("default", "", "model name the legacy endpoints alias to (default: first -model)")
		hours    = flag.Float64("hours", 24, "virtual hours of training telemetry for specs without :hours")
		seed     = flag.Int64("seed", 1, "seed")
		scenario = flag.String("scenario", "web", "scenario for bare-kind -model flags (builtin: web | nat)")
		target   = flag.String("target", "util", "target for bare-kind -model flags (util | latency | violation)")
		storeDir = flag.String("store", "", "artifact store directory: warm-start previously trained models "+
			"from it and persist every trained/retrained model into it")
		budgetMs = flag.Int("budget-ms", 0, "default latency budget (ms) for explain/whatif/importance requests "+
			"that carry none; 0 = unbudgeted. Per-request budget_ms / X-Budget-Ms override it.")
		maxInflight = flag.Int("max-inflight", 0, "per-model concurrent explain/whatif/importance limit "+
			"(0 = GOMAXPROCS); excess requests queue briefly, then shed with 503 + Retry-After")
		nodeID = flag.String("node-id", "", "this node's id in a serving cluster; required with -peers/-peers-file, "+
			"also reported standalone in /healthz and X-Served-By")
		peers = flag.String("peers", "", "static cluster membership as id=url,id=url,... (must include this node); "+
			"enables consistent-hash routing of /v1/models/{name}/* to shard owners")
		peersFile = flag.String("peers-file", "", "JSON [{\"id\":..,\"url\":..},...] membership file re-read every probe "+
			"tick; alternative to -peers for rolling membership changes")
		replication  = flag.Int("replication", 0, "shard owners per model on the hash ring (default 2, clamped to fleet size)")
		syncInterval = flag.Duration("sync-interval", 2*time.Second, "manifest-watch period: how often this node pulls "+
			"models trained elsewhere from the shared -store (0 disables; needs -store)")
		cacheMB = flag.Int("cache-mb", 256, "explanation result cache budget (MiB of in-process entries); "+
			"0 disables caching entirely (no X-Cache header, /v1/cachez reports disabled)")
		cacheTTL = flag.Duration("cache-ttl", 0, "max age of a cached explanation (0 = entries live until "+
			"evicted by byte pressure or their artifact digest is swapped out)")
		cacheTier2 = flag.Bool("cache-tier2", false, "persist hot cache entries under -store (DIR/xcache) so a "+
			"restarted or newly joined node serves explanations computed by the previous process or the fleet; needs -store")
		matBackend = flag.String("matbackend", "", "dense-kernel backend for the explainer hot loops "+
			"(go | blocked); default: the build-tag default. The active backend is reported on /readyz.")
		schedWorkers = flag.Int("sched-workers", 0, "shared kernel worker-pool size (0 = GOMAXPROCS); "+
			"bounds batch predict/explain fan-out process-wide")
		schedPin = flag.Bool("sched-pin", false, "pin kernel pool workers to OS threads (steadier tail "+
			"latency on dedicated cores at the cost of scheduler flexibility)")
	)
	flag.Var(&raw, "model", "scenario:model:target[:hours] spec; repeat to serve several models. "+
		"A bare kind (e.g. just \"rf\") combines with -scenario/-target, matching the pre-v1 CLI.")
	flag.Var(&rawFeeds, "feed", "name:scenario[:rate] live feed to start at boot; repeat for several feeds. "+
		"rate is virtual seconds per wall second (default 60).")
	flag.Parse()

	// Kernel plane: select the dense-kernel backend and size (optionally
	// pin) the shared worker pool before any model trains, so every
	// computation in the process runs on the configured plane.
	if *matBackend != "" {
		if err := mat.Use(*matBackend); err != nil {
			fmt.Fprintln(os.Stderr, "explaind:", err)
			os.Exit(2)
		}
	}
	if *schedWorkers > 0 || *schedPin {
		sched.Configure(*schedWorkers, *schedPin)
	}
	log.Printf("kernel plane: mat backend %s, sched workers %d (pin %v)",
		mat.Active().Name(), *schedWorkers, *schedPin)

	if len(raw) == 0 {
		raw = stringList{"rf"}
	}
	var specs []registry.Spec
	for _, s := range raw {
		// Bare kinds keep the pre-v1 single-model CLI working:
		// explaind -scenario web -model rf -target util.
		if !strings.Contains(s, ":") {
			s = fmt.Sprintf("%s:%s:%s", *scenario, s, *target)
		}
		sp, err := registry.ParseSpec(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// ParseSpec leaves Hours 0 when the spec carries no :hours suffix,
		// so an explicit ":24" survives a different global -hours.
		if sp.Hours == 0 {
			sp.Hours = *hours
		}
		sp.Seed = *seed
		specs = append(specs, sp)
	}

	reg := registry.New()
	reg.OnStoreError = func(err error) { log.Printf("store: %v", err) }

	// Durable artifact plane: warm-start previously trained pipelines from
	// the store, then persist everything trained from here on.
	if *storeDir != "" {
		st, err := registry.OpenFSStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		// Retry/backoff + circuit breaker in front of the filesystem: a
		// transient I/O failure retries with jitter instead of dropping a
		// manifest write, and a dead disk trips the breaker (visible in
		// /readyz) rather than hanging every persist.
		reg.UseStore(registry.NewRetryStore(st, registry.RetryConfig{}))
		rep, err := reg.WarmStart(time.Now())
		if err != nil {
			log.Fatal(err)
		}
		for _, re := range rep.Errors {
			log.Printf("store: restore %s: %v (skipped)", re.Name, re.Err)
		}
		if len(rep.Models) > 0 || rep.Scenarios > 0 {
			log.Printf("warm start: restored %d model(s) %v and %d scenario(s) from %s",
				len(rep.Models), rep.Models, rep.Scenarios, *storeDir)
		}
	}

	// Explanation result cache: content-addressed (entries keyed by the
	// artifact digest, never the model name) with single-flight
	// coalescing of concurrent identical requests. -cache-tier2 spills
	// hot entries under the artifact store so a restarted process — or a
	// freshly joined cluster node sharing the store — serves
	// explanations the previous process or the rest of the fleet already
	// computed.
	if *cacheMB > 0 {
		ccfg := xcache.Config{MaxBytes: int64(*cacheMB) << 20, TTL: *cacheTTL}
		if *cacheTier2 {
			if *storeDir == "" {
				fmt.Fprintln(os.Stderr, "explaind: -cache-tier2 requires -store")
				os.Exit(2)
			}
			t2, err := xcache.NewDirStore(filepath.Join(*storeDir, "xcache"))
			if err != nil {
				log.Fatal(err)
			}
			ccfg.Tier2 = t2
		}
		reg.UseExplainCache(xcache.New(ccfg))
		log.Printf("explanation cache: %d MiB, ttl %v, tier2 %v", *cacheMB, *cacheTTL, *cacheTier2)
	}

	// Track the initial background builds: a -model flag whose training
	// fails must terminate the process (non-zero) instead of leaving a
	// permanently failed entry behind a healthy-looking listener.
	builds := make(chan string, 16)
	reg.NotifyBuilds(builds)
	errc := make(chan error, 1)
	initial := map[string]bool{}

	// Train the first (default) model synchronously so the process comes up
	// serving; the rest build in the background like POST /v1/models would.
	// Models restored from the store skip retraining entirely.
	first := specs[0]
	if _, err := reg.Get(first.Name); err == nil {
		log.Printf("%s already in registry (warm start); skipping synchronous training", first.Name)
	} else {
		log.Printf("training %s (%s, %.0fh) synchronously...", first.Name, first.Model, first.Hours)
		p, err := reg.BuildPipeline(first)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := reg.AddReady(first, p, time.Now()); err != nil {
			log.Fatal(err)
		}
		if p.Train.Task == dataset.Regression {
			rep := p.EvaluateRegression()
			log.Printf("%s: test MAE %.4f RMSE %.4f R2 %.4f", first.Name, rep.MAE, rep.RMSE, rep.R2)
		} else {
			rep := p.EvaluateClassification()
			log.Printf("%s: test acc %.4f F1 %.4f AUC %.4f", first.Name, rep.Accuracy, rep.F1, rep.AUC)
		}
	}

	for _, sp := range specs[1:] {
		if _, err := reg.Get(sp.Name); err == nil {
			log.Printf("%s already in registry (warm start); skipping training", sp.Name)
			continue
		}
		if _, err := reg.Create(sp); err != nil {
			log.Fatal(err)
		}
		initial[sp.Name] = true
		log.Printf("training %s in the background (status: GET /v1/models/%s)", sp.Name, sp.Name)
	}
	// Watch build completions forever (runtime POST /v1/models builds
	// flow through the same channel and must stay drained); an initial
	// -model spec failing its build aborts the process through errc.
	go func() {
		for name := range builds {
			if !initial[name] {
				continue
			}
			e, err := reg.Get(name)
			if err == nil && e.Status == registry.StatusFailed {
				select {
				case errc <- fmt.Errorf("initial training of %s failed: %s", name, e.Err):
				default:
				}
			}
		}
	}()
	if *defName != "" {
		if err := reg.SetDefault(*defName); err != nil {
			log.Fatal(err)
		}
	}

	s := serve.NewServer(reg)
	s.DefaultBudgetMs = *budgetMs
	s.MaxInflight = *maxInflight
	s.NodeID = *nodeID
	s.Logf = log.Printf
	defer s.Close()

	// Serving cluster: -peers/-peers-file turn this process into one shard
	// of a fleet — a consistent-hash ring routes /v1/models/{name}/* to
	// owners, liveness probes demote dead peers, and the manifest-watch
	// syncer pulls models trained on other nodes out of the shared store.
	if *peers != "" || *peersFile != "" {
		if *nodeID == "" {
			fmt.Fprintln(os.Stderr, "explaind: -peers/-peers-file require -node-id")
			os.Exit(2)
		}
		ccfg := cluster.Config{
			Self:        *nodeID,
			Replication: *replication,
			Seed:        uint64(*seed),
			MembersFile: *peersFile,
		}
		if *peers != "" {
			nodes, err := cluster.ParsePeers(*peers)
			if err != nil {
				log.Fatal(err)
			}
			ccfg.Nodes = nodes
		}
		c, err := cluster.New(ccfg)
		if err != nil {
			log.Fatal(err)
		}
		c.Start()
		defer c.Stop()
		s.Cluster = c
		var ids []string
		for _, n := range c.Peers() {
			ids = append(ids, n.ID)
		}
		log.Printf("cluster: node %s joined ring of %d (replication %d): %s",
			*nodeID, len(ids), c.Replication(), strings.Join(ids, " "))
		if *storeDir == "" {
			log.Printf("cluster: WARNING: no -store; models trained on other nodes will not sync here")
		}
	}
	if *storeDir != "" && *syncInterval > 0 {
		syn := &cluster.Syncer{
			Reg:      reg,
			Interval: *syncInterval,
			OnError:  func(err error) { log.Printf("sync: %v", err) },
		}
		syn.Start()
		defer syn.Stop()
		s.Syncer = syn
	}

	// Boot-time feeds: -feed name:scenario[:rate], the CLI twin of
	// POST /v1/feeds.
	for _, spec := range rawFeeds {
		name, scen, rate, err := parseFeedSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		sp, err := reg.Scenarios.Lookup(scen)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := s.Hub().Open(name, sp, feed.Options{Simulate: true, Seed: *seed, Rate: rate}); err != nil {
			log.Fatal(err)
		}
		log.Printf("feed %s streaming scenario %s (rate %.0fx)", name, sp.Name, rate)
	}

	// ReadHeaderTimeout bounds a slow-loris client's grip on a connection;
	// IdleTimeout reaps idle keep-alives. No blanket write timeout: SSE
	// streams (/v1/models/{name}/stream) are long-lived by design, and
	// request work is bounded by latency budgets instead.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go func() {
		if err := srv.ListenAndServe(); err != nil {
			select {
			case errc <- err:
			default:
			}
		}
	}()
	log.Printf("explaind listening on %s with %d model(s), default %s", *addr, reg.Len(), reg.DefaultName())

	// Graceful shutdown: a first SIGINT/SIGTERM drains the listener with a
	// timeout, then Close (deferred) cancels jobs and stops feeds. A second
	// signal aborts the drain immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down (waiting up to %s for in-flight requests)...", shutdownTimeout)
		// Close the streaming plane first: open SSE streams only end when
		// their feed closes, so closing feeds up front lets Shutdown's
		// drain finish promptly instead of always burning the full
		// timeout. Running jobs are cancelled at the same time.
		s.Close()
		sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("shutdown: %v", err)
		}
	}
	log.Printf("explaind stopped")
}

// parseFeedSpec parses "name:scenario[:rate]".
func parseFeedSpec(s string) (name, scenario string, rate float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return "", "", 0, fmt.Errorf("feed spec %q: want name:scenario[:rate]", s)
	}
	rate = 60
	if len(parts) == 3 {
		rate, err = strconv.ParseFloat(parts[2], 64)
		if err != nil || rate <= 0 {
			return "", "", 0, fmt.Errorf("feed spec %q: bad rate %q", s, parts[2])
		}
	}
	return parts[0], parts[1], rate, nil
}
