package nfvxai

// PR 9 benchmarks: the content-addressed explanation result cache.
//
// BenchmarkExplainCacheHit prices the two ways the same request can be
// served — computing default-option KernelSHAP cold versus returning the
// cached attribution — on one pipeline, one instance, one method. The
// acceptance bar is a >=50x win for the hit path; in practice it is
// orders of magnitude beyond that, because a hit is a shard-mutex map
// lookup while a cold KernelSHAP is thousands of model evaluations plus
// a weighted ridge solve.
//
// BenchmarkExplainCoalesced prices the stampede case: 64 goroutines ask
// for the same uncached explanation at once. Single-flight admits one
// leader; the other 63 block on its result. The whole burst therefore
// costs ~one cold computation, not 64 — the per-op time here is the
// leader's compute amortized over nothing, bounded below by the cold
// benchmark above.

import (
	"context"
	"sync"
	"testing"

	"nfvxai/internal/core"
	"nfvxai/internal/xai"
	"nfvxai/internal/xai/xcache"
)

var (
	cachePipeOnce sync.Once
	cachePipe     *core.Pipeline
	cachePipeErr  error
)

func cachePipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	perfModels(b)
	cachePipeOnce.Do(func() {
		cachePipe, cachePipeErr = core.NewPipeline(core.ModelForest, perfDS, 2)
	})
	if cachePipeErr != nil {
		b.Fatal(cachePipeErr)
	}
	return cachePipe
}

// BenchmarkExplainCacheHit/cold computes default-option KernelSHAP fresh
// every iteration (the no_cache path: same code, no cache consulted).
// BenchmarkExplainCacheHit/hit serves the identical request from the
// result cache.
func BenchmarkExplainCacheHit(b *testing.B) {
	p := cachePipeline(b)
	p.ResultCache = xcache.New(xcache.Config{})
	defer func() { p.ResultCache = nil }()
	ctx := context.Background()
	x := p.Test.X[0]

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := p.ExplainCached(ctx, "kernelshap", xai.Options{}, x, true); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("hit", func(b *testing.B) {
		// Seed the entry, then measure pure hits.
		if _, _, _, err := p.ExplainCached(ctx, "kernelshap", xai.Options{}, x, false); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _, outcome, err := p.ExplainCached(ctx, "kernelshap", xai.Options{}, x, false)
			if err != nil {
				b.Fatal(err)
			}
			if outcome != xcache.OutcomeHit {
				b.Fatalf("outcome %v, want hit", outcome)
			}
		}
	})
}

// BenchmarkExplainCoalesced: 64 concurrent identical requests against an
// empty cache per iteration — one computation serves the whole burst.
func BenchmarkExplainCoalesced(b *testing.B) {
	p := cachePipeline(b)
	defer func() { p.ResultCache = nil }()
	ctx := context.Background()
	x := p.Test.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := xcache.New(xcache.Config{})
		p.ResultCache = c
		b.StartTimer()

		var wg sync.WaitGroup
		for g := 0; g < 64; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, _, _, err := p.ExplainCached(ctx, "kernelshap", xai.Options{}, x, false); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()

		b.StopTimer()
		if st := c.Stats(); st.Misses != 1 {
			b.Fatalf("iteration computed %d times, want 1", st.Misses)
		}
		b.StartTimer()
	}
}
