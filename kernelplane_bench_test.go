package nfvxai

// Benchmark pairs for the kernel plane (PR 10): the quantized float32/
// SoA tree path against the float64 flat path it opts out of, over the
// same trained ensembles and rows. The headline speedups are recorded in
// BENCH_PR10.json and gated by cmd/benchdiff:
//
//	go test -run '^$' -bench 'QuantPredict' -benchmem .
//
// The workload is a seeded synthetic regression surface rather than the
// telemetry scenario the other perf benches use: the quantized path only
// serves when its parity probe accepts, and realistic telemetry rows
// occasionally land close enough to a split threshold that float32 input
// rounding flips a leaf — an honest rejection, but one that would leave
// this pair silently benchmarking the exact path twice. Every quantized
// benchmark asserts QuantActive after warm-up for the same reason.

import (
	"math/rand"
	"sync"
	"testing"

	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/forest"
)

var (
	quantBenchOnce sync.Once
	quantBenchDS   *dataset.Dataset
	quantBenchRF   *forest.RandomForest
	quantBenchGBT  *forest.GradientBoosting
)

// quantBenchModels trains the quantized-pair workload: 4096 rows of a
// smooth nonlinear response over 16 features, under the same ensemble
// hyperparameters core.TrainModel uses.
func quantBenchModels(b *testing.B) {
	b.Helper()
	quantBenchOnce.Do(func() {
		const rows, d = 4096, 16
		rng := rand.New(rand.NewSource(11))
		ds := &dataset.Dataset{Task: dataset.Regression}
		for j := 0; j < d; j++ {
			ds.Names = append(ds.Names, "f")
		}
		for i := 0; i < rows; i++ {
			x := make([]float64, d)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			y := 10*x[0]*x[1] + 5*x[2] + 3*x[3]*x[3] + rng.NormFloat64()
			ds.X = append(ds.X, x)
			ds.Y = append(ds.Y, y)
		}
		quantBenchDS = ds
		quantBenchRF = &forest.RandomForest{NumTrees: 40, MaxDepth: 10, MinLeaf: 3, Task: ds.Task, Seed: 2}
		if err := quantBenchRF.Fit(ds); err != nil {
			panic(err)
		}
		quantBenchGBT = &forest.GradientBoosting{NumRounds: 120, LearningRate: 0.1, MaxDepth: 4, Task: ds.Task, Seed: 2}
		if err := quantBenchGBT.Fit(ds); err != nil {
			panic(err)
		}
	})
}

// quantWarm runs the parity-probe batch (served exact) so the benchmark
// loop times the steady-state quantized kernel, then asserts the probe
// accepted — a rejected probe would silently bench the exact path.
func quantWarm(b *testing.B, m ml.BatchPredictor, active func() bool) {
	b.Helper()
	out := make([]float64, len(quantBenchDS.X))
	m.PredictBatch(quantBenchDS.X, out)
	if !active() {
		b.Fatal("quantized parity probe rejected; benchmark would measure the exact path")
	}
}

func BenchmarkForestQuantPredictFloat64(b *testing.B) {
	quantBenchModels(b)
	X := quantBenchDS.X
	out := make([]float64, len(X))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quantBenchRF.PredictBatch(X, out)
	}
}

func BenchmarkForestQuantPredictQuantized(b *testing.B) {
	quantBenchModels(b)
	qf := *quantBenchRF
	qf.Quantize = true
	quantWarm(b, &qf, qf.QuantActive)
	X := quantBenchDS.X
	out := make([]float64, len(X))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qf.PredictBatch(X, out)
	}
}

func BenchmarkGBTQuantPredictFloat64(b *testing.B) {
	quantBenchModels(b)
	X := quantBenchDS.X
	out := make([]float64, len(X))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quantBenchGBT.PredictBatch(X, out)
	}
}

func BenchmarkGBTQuantPredictQuantized(b *testing.B) {
	quantBenchModels(b)
	qg := *quantBenchGBT
	qg.Quantize = true
	quantWarm(b, &qg, qg.QuantActive)
	X := quantBenchDS.X
	out := make([]float64, len(X))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qg.PredictBatch(X, out)
	}
}
