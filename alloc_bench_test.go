package nfvxai

// Allocation benchmarks for the pooled explainer buffers (PR 9): the
// coalition-mask / perturbation-matrix working sets in shap and lime are
// drawn from sync.Pools, so steady-state allocs/op stays flat in the
// neighborhood size instead of growing with it. Run with -benchmem:
//
//	go test -run '^$' -bench 'KernelShap|LimeExplain' -benchmem .

import (
	"context"
	"testing"

	"nfvxai/internal/xai/lime"
)

// BenchmarkLimeExplain explains one instance per iteration at the default
// 1000-sample neighborhood over the default forest — the buffer-pooling
// twin of BenchmarkKernelShapBatched for the lime perturbation builder.
func BenchmarkLimeExplain(b *testing.B) {
	perfModels(b)
	e := &lime.Explainer{Model: perfRF, Background: perfDS.X[:60], NumSamples: 1000, Seed: 7}
	x := perfDS.X[100]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(context.Background(), x); err != nil {
			b.Fatal(err)
		}
	}
}
