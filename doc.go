// Package nfvxai is an explainable-AI toolkit for NFV management,
// reproducing "Towards explainable artificial intelligence for network
// function virtualization" (CoNEXT 2020) — see DESIGN.md for the scope
// note and system inventory.
//
// The implementation lives under internal/: the NFV substrate
// (internal/nfv/...), the from-scratch ML models (internal/ml/...), the
// explanation methods (internal/xai/...), the pipeline tying them
// together (internal/core), and the versioned multi-model serving layer
// (internal/registry + internal/serve, documented in API.md). Executables
// are under cmd/, runnable examples under examples/, and the benchmarks in
// bench_test.go regenerate every table and figure of the evaluation.
package nfvxai

// Version identifies the reproduction snapshot.
const Version = "1.0.0"
