// Package nfvxai is an explainable-AI toolkit for NFV management,
// reproducing "Towards explainable artificial intelligence for network
// function virtualization" (CoNEXT 2020) — see DESIGN.md for the scope
// note and system inventory.
//
// The implementation lives under internal/: the NFV substrate
// (internal/nfv/...), the from-scratch ML models (internal/ml/...), the
// explanation methods (internal/xai/...), the pipeline tying them
// together (internal/core), and the versioned multi-model serving layer
// (internal/registry + internal/serve, documented in API.md). Executables
// are under cmd/, runnable examples under examples/, and the benchmarks in
// bench_test.go regenerate every table and figure of the evaluation.
//
// # The explanation plane
//
// Explanation methods are first-class, selectable resources. Every method
// package registers an xai.Method (name, local/global kind, capability
// flags, typed default options) in the package-level registry from init;
// importing internal/core wires the full set: treeshap, kernelshap, lime,
// anchors, counterfactual, and intgrad locally, with pdp, perm, and
// surrogate as global methods. Explainers implement
// Explain(ctx, x) with cancellation checked inside their sampling hot
// loops, so serving deadlines and job cancellation propagate end to end.
// core.Pipeline holds a small per-(method, params) LRU of built
// explainers — the default method's entry reproduces the pre-registry
// explainer bit for bit — and the serving layer exposes the plane as
// GET /v1/models/{name}/explainers, "method"/"params"/"evaluate" on
// explain requests, and the asynchronous /v1/jobs lifecycle
// (global-importance, pdp-grid, surrogate-tree, cleverhans-audit) with
// progress and cancellation.
//
// # The streaming data plane
//
// Scenarios are declarative data, not code: core.ScenarioSpec is the
// JSON-serializable description of a testbed (chain composition, traffic
// shape, SLO, epoch), compiled on demand into the runnable core.Scenario.
// A concurrent core.ScenarioRegistry catalogs specs — the two paper
// scenarios are pre-registered ("web-sfc"/"web", "nat-edge"/"nat") and
// new topologies register at runtime through POST /v1/scenarios, then
// train, serve and stream without a process restart. On top sits
// internal/feed, the live-telemetry layer: a feed runs a scenario's
// simulated world continuously on a background goroutine (virtual time
// throttled to wall time at a configurable rate) or accepts external
// records over POST /v1/feeds/{name}/records in the same wire schema,
// fanning telemetry.Record streams out to subscribers over non-blocking
// channels. Models attach to feeds (POST /v1/feeds/{name}/attach): a
// monitor goroutine extracts (features, next-epoch target) examples into
// a ring-bounded streaming dataset, scores each against the live model,
// and a drift detector compares a sliding recent window against a frozen
// post-training baseline (prediction-error ratio and feature-mean shift).
// Drift submits a retrain job through the jobs subsystem, which trains on
// the streamed window and hot-swaps the pipeline via the registry
// lifecycle; GET /v1/models/{name}/stream serves the feed back as
// Server-Sent Events pairing every record with its prediction and top-k
// attribution, micro-batched through the batch-inference fast path.
//
// # Performance: batch inference
//
// Explanations are thousands of perturbed model evaluations, so the hot
// path is batched end to end. Models expose ml.BatchPredictor
// (PredictBatch over a row matrix, bit-identical to a Predict loop):
// linear models as a mat-vec sweep, the MLP as a layer-wise pass over
// reused buffers, and trees via a flattened breadth-first routing layout
// (16-byte records, adjacent siblings, self-looping leaves) with forest
// and GBT batches sharded across a goroutine pool. The explainers —
// KernelSHAP, LIME, PDP/ICE, permutation importance — assemble their
// perturbation matrices in flat buffers and evaluate them with single
// batched calls; KernelSHAP additionally collapses additive tree
// ensembles into per-(tree, background) divergence trees so each
// coalition is a handful of mask lookups. External models that implement
// only Predict keep working through a worker-chunked fallback with
// identical results. Benchmark pairs in perf_bench_test.go quantify the
// win (see BENCH_PR2.json and the Performance section of API.md).
//
// # The kernel plane
//
// Under the batch layer sits a mechanical-sympathy kernel plane
// (internal/mat, internal/sched, the quantized tree kernels in
// internal/ml/tree). Dense linear algebra routes through a swappable
// mat.Backend — a portable "go" backend and a cache-blocked,
// register-tiled "blocked" backend selected at build time (-tags
// matblocked) or at startup (explaind -matbackend); the active backend
// is reported on /readyz as mat_backend, and both pass one shared parity
// suite. The weighted least-squares solves at the heart of KernelSHAP
// and LIME run through SolveWeightedRidgeInto: pooled gram/rhs/factor
// workspaces and an in-place Cholesky, so a steady-state explanation
// performs no solver allocation (batched KernelSHAP runs at 6 allocs/op,
// LIME at 3 — BENCH_PR10.json). Tree ensembles gain an opt-in quantized
// path (RandomForest/GradientBoosting Quantize): float32 SoA routing
// slabs with floor-rounded thresholds, swept tree-major over float32 row
// blocks with 16 rows advanced in lock-step so independent node loads
// overlap instead of serializing on one row's pointer chase — 1.8x the
// float64 flat path on a 40-tree forest. The path is contract-gated: the
// first quantized batch is served exact while a row-by-row probe checks
// the 1e-6 relative-error bound, any violation permanently falls back,
// and QuantActive() reports which path is serving. Fan-out across all of
// it flows through one core-aware worker pool (internal/sched) with
// per-worker float arenas, configured once (explaind -sched-workers,
// -sched-pin) instead of per-call-site goroutine spawning.
//
// # The durable artifact plane
//
// Nothing trained is lost on exit. Every model kind serializes to a
// versioned binary blob (internal/wire: little-endian scalars, floats as
// exact IEEE-754 bit patterns) behind ml.EncodeModel/DecodeModel, and
// core.Pipeline.Save/LoadPipeline capture the whole servable unit —
// model (including the standardizing scaler), frozen train/test splits,
// SHAP background, seed and trained-explainer metadata — with
// bit-identical predict and default-method explain parity after a round
// trip; tree models rebuild their flattened batch-routing layouts on
// load. The registry persists through a pluggable registry.Store
// (filesystem first: content-addressed artifacts plus an atomically
// written manifest), warm-starts from it on boot (explaind -store),
// persists streaming retrains, and moves artifacts between processes via
// GET /v1/models/{name}/artifact and POST /v1/models/import. Corruption
// is typed: truncated artifacts, manifest version mismatches and unknown
// model kinds each surface distinct errors while the rest of the
// registry keeps serving.
//
// # The experiment runner
//
// internal/experiment reproduces the paper's core methodology — the
// systematic comparison of explanation methods across workloads — as a
// declarative artifact. An ExperimentSpec (scenarios × model kinds ×
// explainer methods × targets, with seeds and sample budgets) compiles
// into a dependency-aware plan: one dataset per scenario×target, one
// trained pipeline per scenario×target×model, one evaluation cell per
// pipeline×method, executed by a bounded worker pool with no stage
// barriers (a cell runs as soon as its pipeline is ready). Each cell
// reports additivity error, deletion AUC, deletion gap vs random
// orderings and latency per explanation; equal (spec, seed) reproduce
// equal metrics. Sweeps run through POST /v1/experiments on the jobs
// lifecycle (progress, cancellation, persisted result matrices) or
// offline via cmd/experiment.
//
// # Static analysis & invariants
//
// The contracts above are machine-enforced, not folklore. cmd/nfvlint
// is a repo-aware multichecker (built on the stdlib-only framework in
// internal/analysis) whose six analyzers each encode one invariant a
// reviewer would otherwise have to hold in their head: ctxcancel
// (explainer sampling loops poll their context, so serving deadlines
// propagate), seededrand (randomness flows from spec-seeded
// *rand.Rand values, never the global source — equal seeds must mean
// equal results), boundedmake (wire-decoded lengths are bounds-checked
// before sizing allocations — corrupt artifacts fail typed, never
// OOM), lockedcall (no store I/O or blocking operation under a
// registry hot lock, no network I/O under any cluster mutex, no tier-2
// store round trip under an explanation-cache shard lock; snapshot
// under lock, do the slow work after), errcmp
// (sentinel errors travel through errors.Is/As and %w so wrapped
// corruption errors still match), and poolalloc (no bare float-slice
// make on the kernel hot paths — scratch comes from sync.Pools or
// sched.Worker arenas, with //lint:allow documenting every legitimate
// escape). `go run ./cmd/nfvlint ./...` must
// stay clean — CI's lint job enforces it alongside go vet,
// staticcheck and govulncheck — and ./scripts/check.sh runs the same
// wall locally plus the native fuzz targets that probe the
// decode-safety contract with hostile bytes (FuzzDecodeModel,
// FuzzReadWire, FuzzParseSpec). Goroutine hygiene is checked the same
// way: the serving, feed and experiment test binaries fail if
// goroutines outlive the tests (internal/testutil/leakcheck).
// CONTRIBUTING.md catalogs the invariants and the narrow
// `//lint:allow` escape hatch.
//
// # The resilience plane
//
// Serving is SLO-aware end to end. Every expensive request can carry a
// latency budget (body budget_ms, X-Budget-Ms header, or the explaind
// -budget-ms default) that becomes a context deadline; budgeted
// KernelSHAP runs progressively — fixed-size coalition blocks with
// per-feature confidence intervals, stopping at convergence or when the
// remaining budget cannot fit another block — and a deadline landing
// mid-run yields the partial estimate (tagged with converged,
// samples_used and ci_half) instead of an error. Before running, a
// capability-aware degradation ladder (treeshap → kernelshap with
// reduced samples → occlusion) prices the request against the model's
// measured per-prediction cost and degrades fidelity, never latency;
// the chosen rung travels in the response's anytime block. Overload is
// shed, not queued: per-model concurrency budgets with a bounded wait
// queue return 503+Retry-After when saturated, and /healthz + /readyz
// report per-model state (ready/degraded/shedding/training/failed)
// plus store health. Persistence failures never gate inference — the
// store sits behind a retrying decorator (jittered exponential backoff,
// transient-vs-permanent classification, circuit breaker with half-open
// probes) and a full outage degrades health while explains keep
// answering. The whole contract is chaos-tested: registry.ChaosStore
// (seeded deterministic error/latency/torn-write injection) and
// feed.Fault (stalls, bursts) drive the internal/chaos suite, which
// asserts — under -race, at a 20% store error rate — that every
// response is a valid, possibly degraded or partial, result or a typed
// 4xx/5xx, with no panics, leaks or wedged locks.
//
// # The cluster plane
//
// explaind is a stateless, shardable frontend: several processes
// sharing one -store form a serving cluster with no coordinator and no
// new dependencies (internal/cluster). A seeded consistent-hash ring —
// FNV-1a with an avalanche finalizer over 64 virtual nodes per member —
// deterministically maps every model name to -replication owner nodes,
// so each node computes identical placement from identical membership
// (static -peers or a -peers-file re-read every probe tick). Requests
// land anywhere: a node that does not own the model reverse-proxies
// /v1/models/{name}/* to the least-loaded alive owner (one hop,
// X-Forwarded-By loop guard; ring order breaks load ties) and falls
// back to its own synced copy when owners are unreachable. Liveness and
// load come from per-peer /readyz probes that snapshot
// membership under the lock, dial without it, and apply results after —
// a discipline the lockedcall analyzer enforces (no network I/O under
// any cluster mutex). Model state replicates through the store, not the
// peer network: registry.SyncManifest pulls the shared manifest on a
// short interval, adopting models trained or imported elsewhere and
// hot-swapping strictly-newer retrains (last-writer-wins per record;
// persistManifest merges concurrent writers so fleets never clobber
// each other). The store itself is object-store-shaped:
// registry.BlobBackend is a put/get/delete/list bucket surface an S3
// adapter can satisfy, registry.NewBlobStore lifts any bucket into a
// full artifact store, and a shared conformance suite pins FSStore,
// MemStore and their retry-wrapped variants to identical semantics.
// Requests carry X-Request-Id end to end (minted when absent, echoed in
// error bodies) and X-Served-By names the answering node; /healthz
// reports ring ownership, peer liveness and sync lag. The 3-node
// in-process e2e and chaos node-down/partition scenarios assert the
// contract: a model trained on one node serves from every node within a
// sync interval, and killing an owner re-routes with nothing worse than
// a typed shed.
//
// # The explanation cache
//
// Explanations are pure functions of (artifact, method, options,
// instance) — every method seeds its own randomness from the options —
// so repeated results are cached by content, never recomputed
// (internal/xai/xcache). The key is sha256(artifact) x method x the
// normalized option fingerprint x sha256(instance), which makes
// invalidation structural: a retrain or hot-swap produces a new digest
// and simply misses (Swap additionally drops the retired digest's
// entries, pure memory hygiene), two models serving one imported
// artifact share entries, and no flush exists anywhere. Entries live in
// a sharded in-process LRU under a byte budget with optional TTL; only
// deterministic local methods cache, and anytime results only once
// converged. A single-flight coalescer collapses request stampedes: 64
// concurrent identical explains run exactly one KernelSHAP, the other
// 63 inherit the leader's result (leadership migrates if the leader
// dies of its own deadline). The serving layer tags every response
// X-Cache: hit|miss|coalesced|bypass (no_cache opts out per request),
// splits batches so only misses reach the worker pool, and reports
// per-digest counters on /readyz and GET /v1/cachez. An optional tier 2
// persists cacheable entries through the same registry store the
// cluster shards artifacts over (explaind -cache-tier2), so a
// warm-started or newly joined node serves explanations the fleet
// already computed; store round trips happen strictly outside shard
// locks, enforced by lockedcall's internal/xai scope. A cache hit is
// ~16,800x cheaper than the cold default-option KernelSHAP it replaces
// (BENCH_PR9.json, gated by cmd/benchdiff), and the sampling hot paths
// it fronts recycle their big allocations — coalition masks, LIME
// neighborhoods, tree-path accumulators — through sync.Pools.
package nfvxai

// Version identifies the reproduction snapshot.
const Version = "1.0.0"
