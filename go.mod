module nfvxai

go 1.22
