package nfvxai

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// prints the artifact's rows, so
//
//	go test -bench=. -benchmem ./... | tee bench_output.txt
//
// doubles as the reproduction record. By default each experiment uses
// NFVXAI_BENCH_HOURS (default 6) virtual hours of telemetry; set it to 24
// for the full-size record used in EXPERIMENTS.md.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"nfvxai/internal/core"
)

func benchConfig() core.ExpConfig {
	hours := 6.0
	if v := os.Getenv("NFVXAI_BENCH_HOURS"); v != "" {
		if h, err := strconv.ParseFloat(v, 64); err == nil && h > 0 {
			hours = h
		}
	}
	return core.ExpConfig{SimHours: hours, Explained: 50, ShapSamples: 1024, Seed: 1}
}

// printOnce ensures each artifact is printed a single time even if the
// benchmark harness reruns the function with larger b.N.
var printed sync.Map

func emit(id string, s fmt.Stringer) {
	if _, loaded := printed.LoadOrStore(id, true); !loaded {
		fmt.Printf("\n%s\n", s.String())
	}
}

func BenchmarkTable1ModelAccuracy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Table1ModelAccuracy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("t1", res)
	}
}

func BenchmarkTable2ViolationClassifiers(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Table2ViolationClassifiers(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("t2", res)
	}
}

func BenchmarkTable3ExplanationFidelity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Table3ExplanationFidelity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("t3", res)
	}
}

func BenchmarkTable4Counterfactuals(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Table4Counterfactuals(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("t4", res)
	}
}

func BenchmarkFigure1GlobalImportance(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Figure1GlobalImportance(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("f1", res)
	}
}

func BenchmarkFigure2ExplanationLatency(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Figure2ExplanationLatency(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("f2", res)
	}
}

func BenchmarkFigure3DeletionCurve(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Figure3DeletionCurve(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("f3", res)
	}
}

func BenchmarkFigure4CleverHans(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Figure4CleverHans(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("f4", res)
	}
}

func BenchmarkFigure5Stability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Figure5Stability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("f5", res)
	}
}

func BenchmarkFigure6Autoscaling(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Figure6Autoscaling(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("f6", res)
	}
}
