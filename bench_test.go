package nfvxai

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// prints the artifact's rows, so
//
//	go test -bench=. -benchmem ./... | tee bench_output.txt
//
// doubles as the reproduction record. By default each experiment uses
// NFVXAI_BENCH_HOURS (default 6) virtual hours of telemetry; set it to 24
// for the full-size record used in EXPERIMENTS.md.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/serve"
)

func benchConfig() core.ExpConfig {
	hours := 6.0
	if v := os.Getenv("NFVXAI_BENCH_HOURS"); v != "" {
		if h, err := strconv.ParseFloat(v, 64); err == nil && h > 0 {
			hours = h
		}
	}
	return core.ExpConfig{SimHours: hours, Explained: 50, ShapSamples: 1024, Seed: 1}
}

// printOnce ensures each artifact is printed a single time even if the
// benchmark harness reruns the function with larger b.N.
var printed sync.Map

func emit(id string, s fmt.Stringer) {
	if _, loaded := printed.LoadOrStore(id, true); !loaded {
		fmt.Printf("\n%s\n", s.String())
	}
}

func BenchmarkTable1ModelAccuracy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Table1ModelAccuracy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("t1", res)
	}
}

func BenchmarkTable2ViolationClassifiers(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Table2ViolationClassifiers(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("t2", res)
	}
}

func BenchmarkTable3ExplanationFidelity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Table3ExplanationFidelity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("t3", res)
	}
}

func BenchmarkTable4Counterfactuals(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Table4Counterfactuals(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("t4", res)
	}
}

func BenchmarkFigure1GlobalImportance(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Figure1GlobalImportance(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("f1", res)
	}
}

func BenchmarkFigure2ExplanationLatency(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Figure2ExplanationLatency(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("f2", res)
	}
}

func BenchmarkFigure3DeletionCurve(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Figure3DeletionCurve(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("f3", res)
	}
}

func BenchmarkFigure4CleverHans(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Figure4CleverHans(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("f4", res)
	}
}

func BenchmarkFigure5Stability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Figure5Stability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("f5", res)
	}
}

func BenchmarkFigure6Autoscaling(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := core.Figure6Autoscaling(cfg)
		if err != nil {
			b.Fatal(err)
		}
		emit("f6", res)
	}
}

// ─── serving-path benchmarks ────────────────────────────────────────────
//
// BenchmarkServeExplainBatch vs BenchmarkServeExplainSequentialUncached
// measure the v1 API redesign's hot path: one batch request fanning out
// over the cached explainer's worker pool, against the seed behavior of N
// sequential /explain requests that each rebuild the explainer. Both
// explain serveBatchSize instances per iteration, so ns/op is directly
// comparable.

const serveBatchSize = 16

var (
	servePipelineOnce sync.Once
	servePipeline     *core.Pipeline
)

func benchServePipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	servePipelineOnce.Do(func() {
		ds, err := core.WebScenario().GenerateDataset(1, 1, telemetry.TargetBottleneckUtil)
		if err != nil {
			b.Fatal(err)
		}
		p, err := core.NewPipeline(core.ModelForest, ds, 2)
		if err != nil {
			b.Fatal(err)
		}
		servePipeline = p
	})
	return servePipeline
}

func postExplain(b *testing.B, url string, body any) {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&struct{}{}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkServeExplainBatch(b *testing.B) {
	p := benchServePipeline(b)
	srv := httptest.NewServer(serve.New(p))
	defer srv.Close()
	instances := p.Test.X[:serveBatchSize]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postExplain(b, srv.URL+"/v1/models/default/explain", map[string]any{"instances": instances, "topk": 5})
	}
}

func BenchmarkServeExplainSequentialUncached(b *testing.B) {
	p := benchServePipeline(b)
	p.DisableExplainerCache = true
	defer func() { p.DisableExplainerCache = false }()
	srv := httptest.NewServer(serve.New(p))
	defer srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range p.Test.X[:serveBatchSize] {
			postExplain(b, srv.URL+"/explain", map[string]any{"features": x, "topk": 5})
		}
	}
}
