package nfvxai

// Benchmark pairs for the durable artifact plane (PR 5): warm-starting a
// registry from stored artifacts vs retraining the same models from
// scratch, and experiment-sweep throughput at 1 worker vs NumCPU. The
// headline numbers are recorded in BENCH_PR5.json:
//
//	go test -run '^$' -bench 'WarmStart|TrainFromScratch|ExperimentSweep' -benchtime 3x .

import (
	"context"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/experiment"
	"nfvxai/internal/registry"
)

// persistSpecs are the models both sides of the warm-vs-cold pair build:
// one of each zoo family that core.TrainModel treats differently.
func persistSpecs() []registry.Spec {
	return []registry.Spec{
		{Scenario: "web", Model: "linear", Target: "util", Hours: persistBenchHours(), Seed: 2},
		{Scenario: "web", Model: "cart", Target: "util", Hours: persistBenchHours(), Seed: 2},
		{Scenario: "web", Model: "rf", Target: "util", Hours: persistBenchHours(), Seed: 2},
	}
}

// persistBenchHours mirrors the bench-smoke knob used since PR 1.
func persistBenchHours() float64 {
	if os.Getenv("NFVXAI_BENCH_HOURS") != "" {
		return 1
	}
	return 4
}

var (
	persistStoreOnce sync.Once
	persistStore     *registry.FSStore
	persistStoreDir  string
)

// persistSeedStore trains the spec set once and persists it, the state a
// warm start restores from.
func persistSeedStore(b *testing.B) *registry.FSStore {
	b.Helper()
	persistStoreOnce.Do(func() {
		dir, err := os.MkdirTemp("", "nfvxai-bench-store-")
		if err != nil {
			b.Fatal(err)
		}
		persistStoreDir = dir
		st, err := registry.OpenFSStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		reg := registry.New()
		reg.OnStoreError = func(err error) { b.Errorf("store: %v", err) }
		reg.UseStore(st)
		for _, sp := range persistSpecs() {
			p, err := reg.BuildPipeline(sp)
			if err != nil {
				b.Fatal(err)
			}
			sp.Name = sp.Scenario + "/" + sp.Model + "/" + sp.Target
			if _, err := reg.AddReady(sp, p, time.Now()); err != nil {
				b.Fatal(err)
			}
		}
		persistStore = st
	})
	return persistStore
}

// BenchmarkRegistryWarmStart restores all three pipelines from disk —
// the explaind -store boot path.
func BenchmarkRegistryWarmStart(b *testing.B) {
	st := persistSeedStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := registry.New()
		reg.UseStore(st)
		rep, err := reg.WarmStart(time.Now())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Models) != 3 || len(rep.Errors) != 0 {
			b.Fatalf("restored %d models, %d errors", len(rep.Models), len(rep.Errors))
		}
	}
}

// BenchmarkRegistryTrainFromScratch is the cold twin: simulate the
// telemetry and train the same three models — what every boot paid
// before the artifact plane.
func BenchmarkRegistryTrainFromScratch(b *testing.B) {
	persistSeedStore(b) // same fixture cost outside the timer for fairness
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := registry.New()
		for _, sp := range persistSpecs() {
			p, err := reg.BuildPipeline(sp)
			if err != nil {
				b.Fatal(err)
			}
			sp.Name = sp.Scenario + "/" + sp.Model + "/" + sp.Target
			if _, err := reg.AddReady(sp, p, time.Now()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// sweepBenchSpec is the experiment-throughput workload: 4 cells over one
// short dataset, explained with small budgets.
func sweepBenchSpec(workers int) experiment.Spec {
	return experiment.Spec{
		Scenarios:      []string{"web"},
		Models:         []string{"linear", "cart"},
		Methods:        []string{"kernelshap", "treeshap"},
		Hours:          0.25,
		Seed:           2,
		Samples:        4,
		ShapSamples:    128,
		DeletionTrials: 3,
		Workers:        workers,
	}
}

func benchSweep(b *testing.B, workers int) {
	r := experiment.Runner{Scenarios: core.NewScenarioRegistry()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := r.Run(context.Background(), sweepBenchSpec(workers), nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Cells) != 4 {
			b.Fatalf("cells = %d", len(m.Cells))
		}
	}
}

// BenchmarkExperimentSweep1Worker / NumCPU measure cells/min scaling of
// the dependency-aware plan executor.
func BenchmarkExperimentSweep1Worker(b *testing.B) { benchSweep(b, 1) }

func BenchmarkExperimentSweepNumCPU(b *testing.B) { benchSweep(b, runtime.NumCPU()) }
