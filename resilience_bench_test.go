package nfvxai

// Benchmark pair for the latency-budgeted anytime explanation path
// (PR 7): the same KernelSHAP request served unbudgeted (full-fidelity,
// unbounded tail) and under a 100 ms budget (ladder pricing + progressive
// sampling + context deadline). Each benchmark reports the p50/p99 of
// the per-request wall latency as custom metrics; the headline numbers —
// and the acceptance bound p99(budgeted) < 2 x budget — are recorded in
// BENCH_PR7.json:
//
//	go test -run '^$' -bench 'ExplainLatency' -benchtime 50x .

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"nfvxai/internal/core"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/serve"
)

var (
	resilienceOnce sync.Once
	resiliencePipe *core.Pipeline
)

// resiliencePipeline trains the forest the explaind default config would
// serve, with a coalition budget large enough that unbudgeted KernelSHAP
// has a tail worth bounding.
func resiliencePipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	resilienceOnce.Do(func() {
		ds, err := core.WebScenario().GenerateDataset(2, 1, telemetry.TargetBottleneckUtil)
		if err != nil {
			b.Fatal(err)
		}
		p, err := core.NewPipeline(core.ModelForest, ds, 1)
		if err != nil {
			b.Fatal(err)
		}
		p.ShapSamples = 2048
		resiliencePipe = p
	})
	return resiliencePipe
}

func benchExplainLatency(b *testing.B, budgetMs int) {
	p := resiliencePipeline(b)
	s := serve.New(p)
	srv := httptest.NewServer(s)
	defer func() {
		srv.Close()
		s.Close()
	}()

	body := func(i int) []byte {
		req := map[string]any{
			"features": p.Train.X[i%len(p.Train.X)],
			"method":   "kernelshap",
		}
		if budgetMs > 0 {
			req["budget_ms"] = budgetMs
		}
		buf, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		return buf
	}
	post := func(i int) {
		resp, err := http.Post(srv.URL+"/v1/models/default/explain", "application/json",
			bytes.NewReader(body(i)))
		if err != nil {
			b.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d: %s", resp.StatusCode, out)
		}
	}
	post(0) // warm: cost measurement, background setup, HTTP keep-alive

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		post(i)
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(f float64) float64 {
		idx := int(f * float64(len(lat)-1))
		return float64(lat[idx].Nanoseconds()) / 1e6
	}
	b.ReportMetric(q(0.50), "p50-ms")
	b.ReportMetric(q(0.99), "p99-ms")
	if budgetMs > 0 {
		fmt.Printf("# budget %d ms: p50 %.1f ms p99 %.1f ms (bound 2x budget = %d ms)\n",
			budgetMs, q(0.50), q(0.99), 2*budgetMs)
	}
}

func BenchmarkExplainLatencyUnbudgeted(b *testing.B) { benchExplainLatency(b, 0) }
func BenchmarkExplainLatencyBudget100(b *testing.B)  { benchExplainLatency(b, 100) }
