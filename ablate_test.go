package nfvxai

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// KernelSHAP coalition budget, LIME's kernel width, the random-forest
// ensemble size, and the value of the paired (antithetic) coalition
// sampling inside KernelSHAP. Each prints a small table; like the main
// experiment benches, the output lands in bench_output.txt.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"nfvxai/internal/core"
	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/forest"
	"nfvxai/internal/ml/metrics"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/xai/lime"
	"nfvxai/internal/xai/shap"
)

var (
	ablationOnce sync.Once
	ablationDS   *dataset.Dataset
)

func ablationData(b *testing.B) *dataset.Dataset {
	b.Helper()
	ablationOnce.Do(func() {
		ds, err := core.WebScenario().GenerateDataset(1, 2, telemetry.TargetBottleneckUtil)
		if err != nil {
			b.Fatal(err)
		}
		ablationDS = ds
	})
	return ablationDS
}

// BenchmarkAblationShapBudget measures KernelSHAP's estimation error
// against the exact Shapley values as the coalition budget grows, on a
// reduced 10-feature view (so the exact oracle is computable).
func BenchmarkAblationShapBudget(b *testing.B) {
	ds := ablationData(b)
	small := ds.SelectFeatures(ds.Names[:10]...)
	train, test := core.SplitDataset(small, 2)
	rf := forest.RandomForest{NumTrees: 20, MaxDepth: 8, Task: dataset.Regression, Seed: 3}
	if err := rf.Fit(train); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	bg := shap.SampleBackground(rng, train.X, 20)
	x := test.X[0]
	exact, err := shap.Exact(context.Background(), &rf, bg, x)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		fmt.Println("\nAblation: KernelSHAP budget vs exact-Shapley L2 error (10 features)")
		fmt.Printf("%8s %12s\n", "budget", "L2 error")
		for _, budget := range []int{32, 64, 128, 256, 1022} {
			k := &shap.Kernel{Model: &rf, Background: bg, NumSamples: budget, Seed: 5}
			attr, err := k.Explain(context.Background(), x)
			if err != nil {
				b.Fatal(err)
			}
			var e2 float64
			for j := range attr.Phi {
				d := attr.Phi[j] - exact.Phi[j]
				e2 += d * d
			}
			fmt.Printf("%8d %12.6f\n", budget, math.Sqrt(e2))
		}
	}
}

// BenchmarkAblationLimeWidth sweeps LIME's kernel width and reports local
// fidelity: narrower kernels fit the local neighborhood better.
func BenchmarkAblationLimeWidth(b *testing.B) {
	ds := ablationData(b)
	train, test := core.SplitDataset(ds, 6)
	rf := forest.RandomForest{NumTrees: 20, MaxDepth: 8, Task: dataset.Regression, Seed: 7}
	if err := rf.Fit(train); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	bg := shap.SampleBackground(rng, train.X, 40)
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		fmt.Println("\nAblation: LIME kernel width vs mean local R² (10 instances)")
		fmt.Printf("%8s %12s\n", "width", "local R2")
		for _, width := range []float64{1, 2, 4, 8, 16} {
			var sum float64
			for inst := 0; inst < 10; inst++ {
				le := &lime.Explainer{
					Model: &rf, Background: bg,
					NumSamples: 600, KernelWidth: width, Seed: 9,
				}
				res, err := le.ExplainDetailed(context.Background(), test.X[inst])
				if err != nil {
					b.Fatal(err)
				}
				sum += res.LocalR2
			}
			fmt.Printf("%8.1f %12.4f\n", width, sum/10)
		}
	}
}

// BenchmarkAblationForestSize sweeps the ensemble size: accuracy
// saturates while cost grows linearly, justifying the default of 40.
func BenchmarkAblationForestSize(b *testing.B) {
	ds := ablationData(b)
	train, test := core.SplitDataset(ds, 10)
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		fmt.Println("\nAblation: random-forest size vs held-out R²")
		fmt.Printf("%8s %10s\n", "trees", "R2")
		for _, n := range []int{1, 5, 10, 20, 40, 80} {
			rf := forest.RandomForest{NumTrees: n, MaxDepth: 10, Task: dataset.Regression, Seed: 11}
			if err := rf.Fit(train); err != nil {
				b.Fatal(err)
			}
			pred := ml.PredictBatch(&rf, test.X)
			fmt.Printf("%8d %10.4f\n", n, metrics.R2(pred, test.Y))
		}
	}
}

// BenchmarkAblationPairedSampling compares paired (antithetic) coalition
// sampling against naive sampling at a fixed small budget, by explaining
// variance against the exact values over several seeds.
func BenchmarkAblationPairedSampling(b *testing.B) {
	ds := ablationData(b)
	small := ds.SelectFeatures(ds.Names[:12]...)
	train, test := core.SplitDataset(small, 12)
	rf := forest.RandomForest{NumTrees: 15, MaxDepth: 8, Task: dataset.Regression, Seed: 13}
	if err := rf.Fit(train); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	bg := shap.SampleBackground(rng, train.X, 15)
	x := test.X[0]
	exact, err := shap.Exact(context.Background(), &rf, bg, x)
	if err != nil {
		b.Fatal(err)
	}
	l2 := func(phi []float64) float64 {
		var e2 float64
		for j := range phi {
			d := phi[j] - exact.Phi[j]
			e2 += d * d
		}
		return math.Sqrt(e2)
	}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			continue
		}
		fmt.Println("\nAblation: KernelSHAP error across sampling seeds (budget 200, 12 features)")
		fmt.Printf("%8s %12s\n", "seed", "L2 error")
		var mean float64
		for seed := int64(0); seed < 5; seed++ {
			k := &shap.Kernel{Model: &rf, Background: bg, NumSamples: 200, Seed: seed}
			attr, err := k.Explain(context.Background(), x)
			if err != nil {
				b.Fatal(err)
			}
			e := l2(attr.Phi)
			mean += e
			fmt.Printf("%8d %12.6f\n", seed, e)
		}
		fmt.Printf("%8s %12.6f\n", "mean", mean/5)
	}
}
