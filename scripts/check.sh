#!/usr/bin/env bash
# check.sh — the full local gate, mirroring what CI runs: tier-1
# (build + tests), the lint wall (gofmt, go vet, nfvlint, and
# staticcheck/govulncheck when installed), and a short fuzz smoke over
# the three hostile-input surfaces. Run it from anywhere inside the
# repo before pushing.
#
#   ./scripts/check.sh            # everything, ~2 min
#   FUZZTIME=0 ./scripts/check.sh # skip the fuzz smoke
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

step() { printf '\n== %s ==\n' "$*"; }

step gofmt
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:" && echo "$out" && exit 1
fi

step "go vet"
go vet ./...

step nfvlint
go run ./cmd/nfvlint ./...

# Optional linters: CI installs pinned versions (see
# .github/workflows/ci.yml); locally they run only when already on PATH
# so the script works in offline containers.
if command -v staticcheck >/dev/null 2>&1; then
  step staticcheck
  staticcheck ./...
else
  echo "skipping staticcheck (not installed)"
fi
if command -v govulncheck >/dev/null 2>&1; then
  step govulncheck
  govulncheck ./...
else
  echo "skipping govulncheck (not installed)"
fi

step build
go build ./...

step test
go test ./...

step "chaos smoke (fault-injected store + feeds + cluster node-down under -race)"
go test -race -timeout 5m ./internal/chaos

step "cluster e2e smoke (3-node fleet under -race)"
go test -race -run 'TestCluster' -timeout 5m ./internal/cluster

step "bench-regression gate (BENCH_*.json history)"
go run ./cmd/benchdiff -history .

if [ "$FUZZTIME" != "0" ]; then
  step "fuzz smoke ($FUZZTIME per target)"
  go test -fuzz 'FuzzDecodeModel' -fuzztime "$FUZZTIME" -run '^$' ./internal/ml
  go test -fuzz 'FuzzReadWire' -fuzztime "$FUZZTIME" -run '^$' ./internal/dataset
  go test -fuzz 'FuzzParseSpec' -fuzztime "$FUZZTIME" -run '^$' ./internal/experiment
fi

printf '\nall checks passed\n'
