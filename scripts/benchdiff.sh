#!/usr/bin/env bash
# benchdiff.sh — the bench-regression gate (see cmd/benchdiff).
#
#   ./scripts/benchdiff.sh                 # audit committed BENCH_*.json history
#   ./scripts/benchdiff.sh old.txt new.txt # diff two `go test -bench` outputs
#
# THRESHOLD (percent, default 10) tunes how much regression is tolerated.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${THRESHOLD:-10}"

if [ "$#" -eq 2 ]; then
  exec go run ./cmd/benchdiff -threshold "$THRESHOLD" "$1" "$2"
fi
exec go run ./cmd/benchdiff -threshold "$THRESHOLD" -history .
