#!/usr/bin/env bash
# benchdiff.sh — the bench-regression gate (see cmd/benchdiff).
#
#   ./scripts/benchdiff.sh                 # audit committed BENCH_*.json history
#   ./scripts/benchdiff.sh old.txt new.txt # diff two `go test -bench` outputs
#
# Capture the two-file inputs with -benchmem and allocs/op is gated too:
#   go test -bench . -benchmem -count 3 ./internal/xai/... > old.txt
#
# THRESHOLD (percent, default 10) tunes how much regression is tolerated.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${THRESHOLD:-10}"

if [ "$#" -eq 2 ]; then
  exec go run ./cmd/benchdiff -threshold "$THRESHOLD" "$1" "$2"
fi
exec go run ./cmd/benchdiff -threshold "$THRESHOLD" -history .
