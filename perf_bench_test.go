package nfvxai

// Benchmark pairs for the batch-inference fast path (PR 2): each batched
// benchmark has a row-at-a-time twin evaluating the same work through
// per-row Predict calls, so the speedup is the ratio of the pair's ns/op.
// The headline numbers are recorded in BENCH_PR2.json:
//
//	go test -run '^$' -bench 'KernelShap|ForestPredict|GBTPredict' -benchmem .

import (
	"context"
	"sync"
	"testing"

	"nfvxai/internal/core"
	"nfvxai/internal/dataset"
	"nfvxai/internal/ml"
	"nfvxai/internal/ml/forest"
	"nfvxai/internal/nfv/telemetry"
	"nfvxai/internal/xai"
	"nfvxai/internal/xai/shap"
	"nfvxai/internal/xai/treeshap"
)

var (
	perfOnce sync.Once
	perfDS   *dataset.Dataset
	perfRF   *forest.RandomForest
	perfGBT  *forest.GradientBoosting
)

// perfModels trains the default forest/GBT configs (core.TrainModel's
// hyperparameters) on one virtual hour of web telemetry.
func perfModels(b *testing.B) {
	b.Helper()
	perfOnce.Do(func() {
		ds, err := core.WebScenario().GenerateDataset(1, 1, telemetry.TargetBottleneckUtil)
		if err != nil {
			b.Fatal(err)
		}
		perfDS = ds
		perfRF = &forest.RandomForest{NumTrees: 40, MaxDepth: 10, MinLeaf: 3, Task: ds.Task, Seed: 2}
		if err := perfRF.Fit(ds); err != nil {
			b.Fatal(err)
		}
		perfGBT = &forest.GradientBoosting{NumRounds: 120, LearningRate: 0.1, MaxDepth: 4, Task: ds.Task, Seed: 2}
		if err := perfGBT.Fit(ds); err != nil {
			b.Fatal(err)
		}
	})
}

func benchPredictRows(b *testing.B, m ml.Predictor, batched bool) {
	perfModels(b)
	X := perfDS.X
	out := make([]float64, len(X))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			ml.PredictBatchInto(m, X, out)
		} else {
			for r, x := range X {
				out[r] = m.Predict(x)
			}
		}
	}
}

func BenchmarkForestPredictRowAtATime(b *testing.B) {
	perfModels(b)
	benchPredictRows(b, perfRF, false)
}

func BenchmarkForestPredictBatched(b *testing.B) {
	perfModels(b)
	benchPredictRows(b, perfRF, true)
}

func BenchmarkGBTPredictRowAtATime(b *testing.B) {
	perfModels(b)
	benchPredictRows(b, perfGBT, false)
}

func BenchmarkGBTPredictBatched(b *testing.B) {
	perfModels(b)
	benchPredictRows(b, perfGBT, true)
}

// benchKernelShap explains one instance per iteration over the default
// forest config at the default 1024-sample budget with a 60-row
// background — the serving hot path's unit of work.
func benchKernelShap(b *testing.B, rowAtATime bool) {
	perfModels(b)
	bg := perfDS.X[:60]
	x := perfDS.X[100]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := &shap.Kernel{Model: perfRF, Background: bg, NumSamples: 1024, Seed: 7, RowAtATime: rowAtATime}
		if _, err := k.Explain(context.Background(), x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelShapRowAtATime(b *testing.B) { benchKernelShap(b, true) }

func BenchmarkKernelShapBatched(b *testing.B) { benchKernelShap(b, false) }

// BenchmarkKernelShapBatchedServing reuses one Kernel across iterations —
// the registry serving pattern — so the sync.Once base-value cache is in
// play on top of the batched evaluation.
func BenchmarkKernelShapBatchedServing(b *testing.B) {
	perfModels(b)
	k := &shap.Kernel{Model: perfRF, Background: perfDS.X[:60], NumSamples: 1024, Seed: 7}
	x := perfDS.X[100]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Explain(context.Background(), x); err != nil {
			b.Fatal(err)
		}
	}
}

// ─── method-registry dispatch overhead ──────────────────────────────────
//
// The explanation plane (PR 3) routes every explain through the xai
// method registry and the pipeline's per-(method, params) explainer
// cache. This pair measures that dispatch against the PR 2 direct path
// (a prebuilt explainer invoked immediately): the delta is the price of
// per-request method selection, and it must stay noise against the
// explanation itself.

var (
	dispatchOnce sync.Once
	dispatchPipe *core.Pipeline
	dispatchErr  error
)

func dispatchPipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	perfModels(b)
	dispatchOnce.Do(func() {
		dispatchPipe, dispatchErr = core.NewPipeline(core.ModelForest, perfDS, 2)
	})
	if dispatchErr != nil {
		b.Fatal(dispatchErr)
	}
	return dispatchPipe
}

// BenchmarkExplainDispatchDirect: prebuilt TreeSHAP explainer, no
// registry in the loop (the PR 2 serving hot path).
func BenchmarkExplainDispatchDirect(b *testing.B) {
	p := dispatchPipeline(b)
	e := &treeshap.Explainer{Model: p.Model.(*forest.RandomForest), Names: p.Train.Names}
	x := p.Test.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(context.Background(), x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExplainDispatchRegistry resolves the method through
// Pipeline.ExplainerFor every iteration — registry lookup, option
// normalization, cache-key fingerprint, LRU hit — before explaining.
func BenchmarkExplainDispatchRegistry(b *testing.B) {
	p := dispatchPipeline(b)
	x := p.Test.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _, err := p.ExplainerFor("treeshap", xai.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Explain(context.Background(), x); err != nil {
			b.Fatal(err)
		}
	}
}
